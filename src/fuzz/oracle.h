// The four oracles of the differential fuzzer (docs/fuzzing.md).
//
// evaluate_program() pushes one candidate ProgramIr through the whole
// pipeline — golden interpreter, per-scheme compile + simulate (with an
// obs::Recorder attached for runtime feature extraction), static verifier,
// and an optional fault-injection run — and reports:
//
//   1. golden differential   — under every scheme the machine must exit
//      cleanly with exactly the golden model's output (order-insensitive
//      when the program spawns threads, whose interleaving the sequential
//      golden model cannot mirror);
//   2. cross-scheme differential — schemes must agree with *each other* on
//      the observable outcome even when the golden model bows out
//      (fork/signals/unhandled throw), since protection must never change
//      program semantics;
//   3. lint cleanliness      — acs-lint (verify::verify_program) must
//      report exactly the codes expected for the scheme (the Table 1
//      columns pinned in tests/verify) and nothing else;
//   4. fault survival        — under an injected ret-slot bitflip plan, a
//      protecting scheme must either exit with the baseline output or be
//      killed; silent output corruption is a finding.
//
// Everything here is a pure function of (ir, config): machine seeds are
// fixed, plans derive from config.fault_seed, and the returned FeatureMap
// is an ordered set — so campaign results are bitwise thread-invariant
// when trials are sequenced through exec::parallel_map_trials.
#pragma once

#include <string>
#include <vector>

#include "compiler/ir.h"
#include "compiler/scheme.h"
#include "fuzz/feature.h"
#include "verify/verifier.h"

namespace acs::fuzz {

enum class OracleKind : u8 {
  kGoldenDiff = 1,   ///< machine output != golden interpreter output
  kCrossSchemeDiff,  ///< two schemes disagree on the observable outcome
  kLint,             ///< verifier codes outside the scheme's expected set
  kFaultSurvival,    ///< silent output corruption under injection
};

[[nodiscard]] const char* oracle_name(OracleKind kind) noexcept;

/// One oracle violation for one (program, scheme) pair.
struct Finding {
  OracleKind oracle = OracleKind::kGoldenDiff;
  compiler::Scheme scheme = compiler::Scheme::kNone;
  std::string detail;

  [[nodiscard]] bool operator==(const Finding&) const = default;
};

struct OracleConfig {
  /// Golden interpreter op budget; candidates that exceed it are discarded
  /// (not findings — the generator made a blow-up, nothing to compare).
  u64 golden_max_ops = 100'000;
  /// Machine instruction budget per scheme run; exceeding it likewise
  /// discards the candidate under every oracle.
  u64 machine_budget = 20'000'000;
  /// Schemes to compile and simulate. Empty = compiler::all_schemes().
  std::vector<compiler::Scheme> schemes;
  /// Passed through to CompileOptions: functions built without the
  /// scheme's instrumentation (the Section 9.2 mixed-library hazard).
  /// Setting this is how tests seed a deterministic lint finding.
  std::vector<std::string> uninstrumented;

  bool run_lint_oracle = true;

  /// Fault-survival oracle. Only ret-slot bitflips are planned: they can
  /// break nothing but frame records on locals-free programs, so a clean
  /// exit with changed output is attributable to the scheme. Programs with
  /// local buffers or repeat-counted calls skip this oracle — local slots
  /// AND the codegen's memory-resident loop counters both sit in the flip
  /// window, and a flipped *data* slot corrupts output under any scheme,
  /// which would be a false positive.
  bool run_fault_oracle = true;
  std::vector<compiler::Scheme> fault_schemes{
      compiler::Scheme::kPacStack, compiler::Scheme::kShadowStack};
  u64 fault_seed = 1;
  u64 fault_mean_interval = 2'000;
};

/// The verifier codes scheme `s` is expected to produce on conforming
/// codegen output (the static re-derivation of Table 1; mirrors
/// tests/verify/verifier_test.cc).
[[nodiscard]] std::vector<verify::Code> expected_lint_codes(
    compiler::Scheme scheme);

struct EvalResult {
  /// False when the candidate was discarded (golden or machine budget
  /// blow-up, or a live-but-deadlocked end state): no oracle applies and
  /// the corpus must not keep it.
  bool viable = false;
  /// Whether the golden model supports the program (oracle 1 applies).
  bool golden_supported = false;
  FeatureMap features;
  std::vector<Finding> findings;
  /// Machine runs performed (the campaign's execs accounting).
  u64 executions = 0;

  [[nodiscard]] bool clean() const noexcept { return findings.empty(); }
};

/// Run every oracle on `ir`. Pure function of its arguments.
[[nodiscard]] EvalResult evaluate_program(const compiler::ProgramIr& ir,
                                          const OracleConfig& config = {});

/// Corpus back-mapping audit (acs-lint --audit): does this dynamically
/// found violation correspond to a static diagnostic?
///
///   kLint           trivially yes — the finding *is* a static diagnostic.
///   kFaultSurvival  yes iff acs-lint on the same (program, scheme) emits
///                   a code outside the scheme's expected set: the silent
///                   corruption the fault oracle observed must have a
///                   statically visible cause.
///   kGoldenDiff / kCrossSchemeDiff are pipeline-semantics findings, not
///   adversary violations; they are out of the audit's scope and map
///   vacuously.
[[nodiscard]] bool maps_to_static(const compiler::ProgramIr& ir,
                                  const Finding& finding);

/// The static (IR-only) feature subset of evaluate_program — cheap enough
/// for test failure messages that want to say which structures a failing
/// seed exercised without running the pipeline again.
[[nodiscard]] FeatureMap ir_features(const compiler::ProgramIr& ir);

}  // namespace acs::fuzz
