// The fuzzing campaign driver (docs/fuzzing.md).
//
// A campaign runs in rounds. Each round SEQUENTIALLY derives a batch of
// candidates from the current corpus snapshot (fresh random graphs, or
// mutations/splices of kept entries), with every candidate's randomness
// seeded via exec::trial_seed — then fans the expensive oracle evaluation
// out through exec::parallel_map_trials and folds the results back in
// trial-index order. Generation and folding never run concurrently with
// anything, so a campaign with a fixed seed and candidate budget is
// bitwise identical for any --threads value (pinned by
// tests/fuzz/campaign_test.cc). The optional wall-clock budget is checked
// only between rounds and is the one intentionally non-deterministic stop
// condition; determinism comparisons must drive the candidate budget.
#pragma once

#include <vector>

#include "fuzz/corpus.h"
#include "fuzz/mutate.h"
#include "fuzz/oracle.h"
#include "workload/callgraph_gen.h"

namespace acs::fuzz {

struct CampaignConfig {
  u64 seed = 1;
  /// Hard cap on candidates evaluated (the --execs of the CLI).
  u64 max_candidates = 128;
  /// Wall-clock cap in seconds, checked between rounds; 0 = none.
  double time_budget_seconds = 0.0;
  std::size_t batch = 16;
  /// Worker threads for oracle evaluation; 0 = all hardware threads.
  unsigned threads = 1;
  OracleConfig oracle;
  MutationLimits limits;
  workload::CallGraphParams generator;
  /// Chance a candidate is freshly generated instead of mutated.
  double fresh_probability = 0.25;
  /// Chance a mutated candidate is first spliced with another entry.
  double splice_probability = 0.15;
  /// Predicate-call budget for shrinking each finding; 0 disables
  /// in-campaign minimization.
  std::size_t minimize_budget = 150;
  /// Programs considered (and evaluated) before the first round — e.g.
  /// replayed reproducers or the confirm-suite programs.
  std::vector<compiler::ProgramIr> seeds;
};

/// One oracle failure the campaign kept: the (possibly shrunk) reproducer
/// in the stable text format plus its size trajectory.
struct FoundCase {
  Finding finding;
  std::string reproducer;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

struct CampaignResult {
  FeatureMap coverage;
  std::vector<FoundCase> findings;
  u64 candidates = 0;   ///< evaluated, including discarded ones
  u64 viable = 0;       ///< candidates at least one oracle applied to
  u64 executions = 0;   ///< machine runs across all oracles
  u64 rounds = 0;
  std::size_t corpus_size = 0;
  bool hit_time_budget = false;

  /// Order-independent digest of the final coverage — what the
  /// thread-invariance tests compare.
  [[nodiscard]] u64 fingerprint() const noexcept {
    return coverage.fingerprint();
  }
};

/// Run one campaign to its candidate (or time) budget.
[[nodiscard]] CampaignResult run_campaign(const CampaignConfig& config);

}  // namespace acs::fuzz
