#include "fuzz/serialize.h"

#include <array>
#include <cstring>
#include <sstream>
#include <stdexcept>

namespace acs::fuzz {
namespace {

using compiler::OpKind;

constexpr const char* op_name_table(OpKind kind) noexcept {
  switch (kind) {
    case OpKind::kCompute: return "compute";
    case OpKind::kCall: return "call";
    case OpKind::kCallIndirect: return "call_indirect";
    case OpKind::kCallViaSlot: return "call_via_slot";
    case OpKind::kVulnSite: return "vuln_site";
    case OpKind::kWriteInt: return "write_int";
    case OpKind::kWriteReg: return "write_reg";
    case OpKind::kSetjmp: return "setjmp";
    case OpKind::kLongjmp: return "longjmp";
    case OpKind::kThreadCreate: return "thread_create";
    case OpKind::kYield: return "yield";
    case OpKind::kStoreLocal: return "store_local";
    case OpKind::kLoadLocal: return "load_local";
    case OpKind::kSigaction: return "sigaction";
    case OpKind::kRaise: return "raise";
    case OpKind::kFork: return "fork";
    case OpKind::kThreadJoin: return "thread_join";
    case OpKind::kCatchPoint: return "catch_point";
    case OpKind::kThrow: return "throw";
  }
  return "unknown";
}

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("acs-ir line " + std::to_string(line) + ": " +
                           what);
}

/// All op kinds, for name -> kind lookup.
constexpr std::array<OpKind, 19> kAllKinds = {
    OpKind::kCompute,      OpKind::kCall,        OpKind::kCallIndirect,
    OpKind::kCallViaSlot,  OpKind::kVulnSite,    OpKind::kWriteInt,
    OpKind::kWriteReg,     OpKind::kSetjmp,      OpKind::kLongjmp,
    OpKind::kThreadCreate, OpKind::kYield,       OpKind::kStoreLocal,
    OpKind::kLoadLocal,    OpKind::kSigaction,   OpKind::kRaise,
    OpKind::kFork,         OpKind::kThreadJoin,  OpKind::kCatchPoint,
    OpKind::kThrow};

}  // namespace

const char* op_kind_name(OpKind kind) noexcept { return op_name_table(kind); }

std::string serialize_ir(const compiler::ProgramIr& ir) {
  std::ostringstream out;
  out << "acs-ir v1\n";
  out << "entry " << ir.entry << "\n";
  for (const auto& fn : ir.functions) {
    out << "fn " << fn.name << " locals " << fn.local_bytes << " tail "
        << fn.tail_callee << " spills_cr " << (fn.spills_cr ? 1 : 0) << "\n";
    for (const auto& op : fn.body) {
      out << "op " << op_name_table(op.kind) << " " << op.a << " " << op.b
          << "\n";
    }
  }
  return out.str();
}

compiler::ProgramIr parse_ir(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;

  const auto next_line = [&]() -> bool {
    while (std::getline(in, line)) {
      ++line_no;
      if (!line.empty()) return true;
    }
    return false;
  };

  if (!next_line() || line != "acs-ir v1") {
    fail(line_no, "missing 'acs-ir v1' header");
  }
  if (!next_line()) fail(line_no, "missing 'entry' line");
  std::istringstream entry_line(line);
  std::string tok;
  std::size_t entry = 0;
  if (!(entry_line >> tok >> entry) || tok != "entry") {
    fail(line_no, "malformed entry line '" + line + "'");
  }

  compiler::ProgramIr ir;
  while (next_line()) {
    std::istringstream fields(line);
    fields >> tok;
    if (tok == "fn") {
      compiler::FunctionIr fn;
      std::string locals_kw, tail_kw, spills_kw;
      int spills = 0;
      if (!(fields >> fn.name >> locals_kw >> fn.local_bytes >> tail_kw >>
            fn.tail_callee >> spills_kw >> spills) ||
          locals_kw != "locals" || tail_kw != "tail" ||
          spills_kw != "spills_cr" || (spills != 0 && spills != 1)) {
        fail(line_no, "malformed fn line '" + line + "'");
      }
      fn.spills_cr = spills == 1;
      ir.functions.push_back(std::move(fn));
    } else if (tok == "op") {
      if (ir.functions.empty()) fail(line_no, "op before any fn");
      std::string name;
      compiler::Op op;
      if (!(fields >> name >> op.a >> op.b)) {
        fail(line_no, "malformed op line '" + line + "'");
      }
      bool found = false;
      for (const OpKind kind : kAllKinds) {
        if (name == op_name_table(kind)) {
          op.kind = kind;
          found = true;
          break;
        }
      }
      if (!found) fail(line_no, "unknown op kind '" + name + "'");
      ir.functions.back().body.push_back(op);
    } else {
      fail(line_no, "unexpected token '" + tok + "'");
    }
    std::string trailing;
    if (fields >> trailing) fail(line_no, "trailing token '" + trailing + "'");
  }

  if (ir.functions.empty()) fail(line_no, "program has no functions");
  if (entry >= ir.functions.size()) fail(line_no, "entry index out of range");
  ir.entry = entry;

  // The same referential checks IrBuilder::build enforces.
  for (const auto& fn : ir.functions) {
    for (const auto& op : fn.body) {
      const bool callee_ref = op.kind == OpKind::kCall ||
                              op.kind == OpKind::kCallIndirect ||
                              op.kind == OpKind::kCallViaSlot ||
                              op.kind == OpKind::kThreadCreate;
      if (callee_ref && op.a >= ir.functions.size()) {
        fail(line_no, "callee index out of range in " + fn.name);
      }
      if (op.kind == OpKind::kSigaction && op.b >= ir.functions.size()) {
        fail(line_no, "handler index out of range in " + fn.name);
      }
    }
    if (fn.tail_callee >= 0 &&
        static_cast<std::size_t>(fn.tail_callee) >= ir.functions.size()) {
      fail(line_no, "tail callee out of range in " + fn.name);
    }
  }
  return ir;
}

}  // namespace acs::fuzz
