#include "fuzz/engine.h"

#include <chrono>
#include <set>
#include <utility>

#include "exec/parallel.h"
#include "fuzz/minimize.h"
#include "fuzz/serialize.h"

namespace acs::fuzz {
namespace {

using compiler::ProgramIr;

/// Derive one candidate from the corpus snapshot (or fresh).
ProgramIr make_candidate(const Corpus& corpus, Rng& rng,
                         const CampaignConfig& config) {
  if (corpus.empty() || rng.next_bool(config.fresh_probability)) {
    return workload::make_random_ir(rng, config.generator);
  }
  const auto& entries = corpus.entries();
  ProgramIr ir = entries[rng.next_below(entries.size())].ir;
  if (entries.size() >= 2 && rng.next_bool(config.splice_probability)) {
    const auto& donor = entries[rng.next_below(entries.size())].ir;
    ir = splice(ir, donor, rng, config.limits);
  }
  const u64 steps = 1 + rng.next_below(3);
  for (u64 i = 0; i < steps; ++i) ir = mutate(ir, rng, config.limits);
  return ir;
}

/// Fold one evaluated candidate into the campaign state; returns the
/// findings that are new (by oracle+scheme) and should be shrunk.
void fold_candidate(const ProgramIr& ir, const EvalResult& eval,
                    const CampaignConfig& config, Corpus& corpus,
                    std::set<std::pair<u8, u8>>& seen_findings,
                    CampaignResult& result) {
  ++result.candidates;
  result.executions += eval.executions;
  if (!eval.viable) return;
  ++result.viable;
  corpus.consider(ir, eval.features);
  for (const Finding& finding : eval.findings) {
    const auto key = std::make_pair(static_cast<u8>(finding.oracle),
                                    static_cast<u8>(finding.scheme));
    if (!seen_findings.insert(key).second) continue;

    FoundCase found;
    found.finding = finding;
    found.ops_before = total_ops(ir);
    ProgramIr reproducer = ir;
    if (config.minimize_budget > 0) {
      const auto still_fails = [&](const ProgramIr& candidate) {
        const EvalResult check = evaluate_program(candidate, config.oracle);
        for (const Finding& f : check.findings) {
          if (f.oracle == finding.oracle && f.scheme == finding.scheme) {
            return true;
          }
        }
        return false;
      };
      reproducer = minimize_ir(ir, still_fails, config.minimize_budget);
    }
    found.ops_after = total_ops(reproducer);
    found.reproducer = serialize_ir(reproducer);
    result.findings.push_back(std::move(found));
  }
}

}  // namespace

CampaignResult run_campaign(const CampaignConfig& config) {
  CampaignResult result;
  Corpus corpus;
  std::set<std::pair<u8, u8>> seen_findings;
  const auto start = std::chrono::steady_clock::now();
  const auto time_exceeded = [&]() {
    if (config.time_budget_seconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= config.time_budget_seconds;
  };

  // Seed programs go through the same evaluate + fold path, before any
  // generated candidate (so replayed reproducers re-fire immediately).
  if (!config.seeds.empty()) {
    const auto evals = exec::parallel_map_trials<EvalResult>(
        config.seeds.size(), config.seed,
        [&](u64 t, u64 /*seed*/) {
          return evaluate_program(config.seeds[t], config.oracle);
        },
        config.threads);
    for (std::size_t i = 0; i < config.seeds.size(); ++i) {
      fold_candidate(config.seeds[i], evals[i], config, corpus, seen_findings,
                     result);
    }
  }

  while (result.candidates < config.max_candidates) {
    if (time_exceeded()) {
      result.hit_time_budget = true;
      break;
    }
    const u64 batch = std::min<u64>(
        config.batch, config.max_candidates - result.candidates);

    // Candidate derivation is sequential over the corpus snapshot: the
    // per-candidate RNG depends only on (seed, round, index).
    std::vector<ProgramIr> candidates(batch);
    for (u64 i = 0; i < batch; ++i) {
      Rng rng(exec::trial_seed(config.seed + 0x9e37 * (result.rounds + 1), i));
      candidates[i] = make_candidate(corpus, rng, config);
    }

    const auto evals = exec::parallel_map_trials<EvalResult>(
        batch, config.seed,
        [&](u64 t, u64 /*seed*/) {
          return evaluate_program(candidates[t], config.oracle);
        },
        config.threads);

    for (u64 i = 0; i < batch; ++i) {
      fold_candidate(candidates[i], evals[i], config, corpus, seen_findings,
                     result);
    }
    ++result.rounds;
  }

  result.coverage = corpus.coverage();
  result.corpus_size = corpus.size();
  return result;
}

}  // namespace acs::fuzz
