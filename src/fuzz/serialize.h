// Stable text serialization for compiler::ProgramIr — the corpus format.
//
// Fuzzer reproducers live in tests/corpus/ as plain text so a failing
// random program survives as an ordinary reviewable regression test. The
// format is line-based and canonical: serialize(parse(text)) == text for
// any text produced by serialize, and parse(serialize(ir)) reproduces `ir`
// field-for-field (pinned by tests/fuzz/serialize_test.cc over random IRs).
//
//   acs-ir v1
//   entry 2
//   fn rg$f0 locals 0 tail -1 spills_cr 0
//   op compute 7 0
//   op call 0 2
//   ...
#pragma once

#include <string>

#include "compiler/ir.h"

namespace acs::fuzz {

/// Stable lowercase token for an IR op kind ("compute", "call", ...).
[[nodiscard]] const char* op_kind_name(compiler::OpKind kind) noexcept;

/// Canonical text rendering of a program.
[[nodiscard]] std::string serialize_ir(const compiler::ProgramIr& ir);

/// Parse the canonical format. Throws std::runtime_error (with a line
/// number) on malformed input; validates entry/callee indices like
/// IrBuilder::build does.
[[nodiscard]] compiler::ProgramIr parse_ir(const std::string& text);

}  // namespace acs::fuzz
