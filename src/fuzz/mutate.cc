#include "fuzz/mutate.h"

#include <algorithm>
#include <vector>

#ifndef NDEBUG
#include <cstdio>
#include <cstdlib>
#include <string>

#include "compiler/validate.h"
#endif

namespace acs::fuzz {
namespace {

using compiler::FunctionIr;
using compiler::Op;
using compiler::OpKind;
using compiler::ProgramIr;

[[nodiscard]] bool is_call_like(OpKind kind) noexcept {
  return kind == OpKind::kCall || kind == OpKind::kCallIndirect ||
         kind == OpKind::kCallViaSlot || kind == OpKind::kThreadCreate;
}

/// DFS cycle check over the static call graph.
bool acyclic_from(const ProgramIr& ir, std::size_t node,
                  std::vector<u8>& color) {
  color[node] = 1;  // on stack
  const auto visit = [&](std::size_t callee) {
    if (color[callee] == 1) return false;
    if (color[callee] == 0 && !acyclic_from(ir, callee, color)) return false;
    return true;
  };
  const FunctionIr& fn = ir.functions[node];
  for (const Op& op : fn.body) {
    if (is_call_like(op.kind) && !visit(op.a)) return false;
    if (op.kind == OpKind::kSigaction && !visit(op.b)) return false;
  }
  if (fn.tail_callee >= 0 &&
      !visit(static_cast<std::size_t>(fn.tail_callee))) {
    return false;
  }
  color[node] = 2;
  return true;
}

/// Pick a random (function, op) site; false if the program has no ops.
bool random_site(const ProgramIr& ir, Rng& rng, std::size_t& fn_out,
                 std::size_t& op_out) {
  const std::size_t total = total_ops(ir);
  if (total == 0) return false;
  std::size_t target = rng.next_below(total);
  for (std::size_t f = 0; f < ir.functions.size(); ++f) {
    if (target < ir.functions[f].body.size()) {
      fn_out = f;
      op_out = target;
      return true;
    }
    target -= ir.functions[f].body.size();
  }
  return false;
}

/// The codegen lowers each kVulnSite to a program-global "vuln_<id>" label
/// (attack adversaries arm breakpoints by that name), so ids must stay
/// unique program-wide or assembly fails on a duplicate label.
[[nodiscard]] u64 fresh_vuln_id(const ProgramIr& ir, Rng& rng) {
  std::vector<u64> used;
  for (const auto& fn : ir.functions) {
    for (const Op& op : fn.body) {
      if (op.kind == OpKind::kVulnSite) used.push_back(op.a);
    }
  }
  u64 id = rng.next_below(64);
  while (std::find(used.begin(), used.end(), id) != used.end()) ++id;
  return id;
}

/// An op that is safe to insert anywhere in function `fn_index`.
Op random_simple_op(const ProgramIr& ir, std::size_t fn_index, Rng& rng,
                    const MutationLimits& limits) {
  const FunctionIr& fn = ir.functions[fn_index];
  for (;;) {
    switch (rng.next_below(7)) {
      case 0:
        return {OpKind::kCompute, 1 + rng.next_below(limits.max_compute), 0};
      case 1:
        return {OpKind::kWriteInt, 2000 + rng.next_below(8000), 0};
      case 2: {
        if (fn_index == 0) break;  // no lower-indexed callee exists
        const std::size_t callee = rng.next_below(fn_index);
        if (rng.next_bool(0.25)) return {OpKind::kCallIndirect, callee, 0};
        if (rng.next_bool(0.2)) {
          return {OpKind::kCallViaSlot, callee, rng.next_below(8)};
        }
        return {OpKind::kCall, callee, 1 + rng.next_below(limits.max_repeat)};
      }
      case 3: {
        if (fn.local_bytes < 8) break;
        const u64 slots = fn.local_bytes / 8;
        if (rng.next_bool()) {
          return {OpKind::kStoreLocal, 8 * rng.next_below(slots), rng.next()};
        }
        return {OpKind::kLoadLocal, 8 * rng.next_below(slots), 0};
      }
      case 4:
        return {OpKind::kYield, 0, 0};
      case 5:
        return {OpKind::kVulnSite, fresh_vuln_id(ir, rng), 0};
      case 6:
        return {OpKind::kWriteInt, 2000 + rng.next_below(8000), 0};
    }
  }
}

/// One mutation attempt; false if the drawn mutation does not apply.
bool mutate_once(ProgramIr& ir, Rng& rng, const MutationLimits& limits) {
  switch (rng.next_below(9)) {
    case 0: {  // insert a simple op
      if (total_ops(ir) >= limits.max_total_ops) return false;
      const std::size_t f = rng.next_below(ir.functions.size());
      auto& body = ir.functions[f].body;
      const std::size_t at = rng.next_below(body.size() + 1);
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(at),
                  random_simple_op(ir, f, rng, limits));
      return true;
    }
    case 1: {  // delete an op (and its partner for paired kinds)
      std::size_t f = 0, o = 0;
      if (!random_site(ir, rng, f, o)) return false;
      auto& body = ir.functions[f].body;
      const OpKind kind = body[o].kind;
      const u64 key = body[o].a;
      body.erase(body.begin() + static_cast<std::ptrdiff_t>(o));
      // A longjmp whose setjmp was deleted (or a throw whose catch was)
      // turns into golden-unsupported UB; drop the orphaned partners. The
      // reverse (setjmp or catch left without a jumper) is harmless.
      const auto drop_kind = [&](OpKind partner) {
        body.erase(std::remove_if(body.begin(), body.end(),
                                  [&](const Op& op) {
                                    return op.kind == partner && op.a == key;
                                  }),
                   body.end());
      };
      if (kind == OpKind::kSetjmp) drop_kind(OpKind::kLongjmp);
      if (kind == OpKind::kCatchPoint) drop_kind(OpKind::kThrow);
      return true;
    }
    case 2: {  // rewire a call site to another (still lower) callee
      std::size_t f = 0, o = 0;
      if (!random_site(ir, rng, f, o)) return false;
      Op& op = ir.functions[f].body[o];
      if (!is_call_like(op.kind) || f == 0) return false;
      op.a = rng.next_below(f);
      return true;
    }
    case 3: {  // constant tweak
      std::size_t f = 0, o = 0;
      if (!random_site(ir, rng, f, o)) return false;
      Op& op = ir.functions[f].body[o];
      switch (op.kind) {
        case OpKind::kCompute:
          op.a = 1 + rng.next_below(limits.max_compute);
          return true;
        case OpKind::kWriteInt:
          op.a = 2000 + rng.next_below(8000);
          return true;
        case OpKind::kCall:
          op.b = 1 + rng.next_below(limits.max_repeat);
          return true;
        case OpKind::kStoreLocal:
          op.b = rng.next();
          return true;
        default:
          return false;
      }
    }
    case 4: {  // toggle the tail call of a non-entry, non-first function
      const std::size_t f = rng.next_below(ir.functions.size());
      FunctionIr& fn = ir.functions[f];
      if (fn.tail_callee >= 0) {
        fn.tail_callee = -1;
        return true;
      }
      if (f == 0) return false;
      fn.tail_callee = static_cast<i64>(rng.next_below(f));
      return true;
    }
    case 5: {  // matched setjmp/longjmp pair in one function
      if (total_ops(ir) + 2 > limits.max_total_ops) return false;
      const std::size_t f = rng.next_below(ir.functions.size());
      auto& body = ir.functions[f].body;
      const u64 slot = rng.next_below(4);
      const std::size_t at = rng.next_below(body.size() + 1);
      const std::size_t rest = body.size() - at;
      const std::size_t jump_at = at + 1 + rng.next_below(rest + 1);
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(at),
                  {OpKind::kSetjmp, slot, 0});
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(jump_at),
                  {OpKind::kLongjmp, slot, 4000 + rng.next_below(100)});
      return true;
    }
    case 6: {  // matched catch/throw pair in one function
      if (total_ops(ir) + 2 > limits.max_total_ops) return false;
      const std::size_t f = rng.next_below(ir.functions.size());
      auto& body = ir.functions[f].body;
      const u64 tag = rng.next_below(4);
      const std::size_t at = rng.next_below(body.size() + 1);
      const std::size_t rest = body.size() - at;
      const std::size_t throw_at = at + 1 + rng.next_below(rest + 1);
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(at),
                  {OpKind::kCatchPoint, tag, 0});
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(throw_at),
                  {OpKind::kThrow, tag, 5000 + rng.next_below(100)});
      return true;
    }
    case 7: {  // resize (or create) the local buffer
      const std::size_t f = rng.next_below(ir.functions.size());
      FunctionIr& fn = ir.functions[f];
      u64 min_bytes = 0;
      for (const Op& op : fn.body) {
        // Wild accesses are absolute, not buffer-relative — they must not
        // inflate the buffer (op.a + 8 would also wrap for the topmost
        // addresses and clamp the buffer to nothing).
        if (compiler::is_wild_access(op)) continue;
        if (op.kind == OpKind::kStoreLocal || op.kind == OpKind::kLoadLocal) {
          min_bytes = std::max(min_bytes, op.a + 8);
        }
      }
      const u64 chosen = 16 * rng.next_below(6);  // 0..80
      fn.local_bytes = std::max(chosen, min_bytes);
      return true;
    }
    case 8: {  // wild access in the top 4 KiB of the address space
      if (total_ops(ir) >= limits.max_total_ops) return false;
      const std::size_t f = rng.next_below(ir.functions.size());
      auto& body = ir.functions[f].body;
      const std::size_t at = rng.next_below(body.size() + 1);
      // Addresses from 2^64 - 4096 up to and including 2^64 - 1: the
      // 8-byte access end wraps past zero for the last seven of them,
      // probing the simulator's wraparound translation-fault path.
      const u64 addr = ~u64{0} - rng.next_below(4096);
      const Op op = rng.next_bool()
                        ? Op{OpKind::kStoreLocal, addr, rng.next()}
                        : Op{OpKind::kLoadLocal, addr, 0};
      body.insert(body.begin() + static_cast<std::ptrdiff_t>(at), op);
      return true;
    }
  }
  return false;
}

#ifndef NDEBUG
/// Debug-build enforcement of the header contract ("the result is always
/// valid and acyclic"): any structural violation in a mutator or splice
/// output is a fuzzer bug, not a finding — print it and abort.
void assert_valid(const ProgramIr& ir, const char* producer) {
  const std::vector<std::string> errors = compiler::validate_ir(ir);
  if (errors.empty()) return;
  std::fprintf(stderr, "fuzz::%s produced invalid IR:\n", producer);
  for (const std::string& error : errors) {
    std::fprintf(stderr, "  %s\n", error.c_str());
  }
  std::abort();
}
#endif

}  // namespace

bool is_acyclic(const ProgramIr& ir) {
  std::vector<u8> color(ir.functions.size(), 0);
  for (std::size_t i = 0; i < ir.functions.size(); ++i) {
    if (color[i] == 0 && !acyclic_from(ir, i, color)) return false;
  }
  return true;
}

std::size_t total_ops(const ProgramIr& ir) {
  std::size_t total = 0;
  for (const auto& fn : ir.functions) total += fn.body.size();
  return total;
}

ProgramIr mutate(const ProgramIr& ir, Rng& rng,
                 const MutationLimits& limits) {
  for (int attempt = 0; attempt < 16; ++attempt) {
    ProgramIr candidate = ir;
    if (!mutate_once(candidate, rng, limits)) continue;
    if (!is_acyclic(candidate)) continue;
#ifndef NDEBUG
    assert_valid(candidate, "mutate");
#endif
    return candidate;
  }
  return ir;
}

ProgramIr splice(const ProgramIr& a, const ProgramIr& donor, Rng& rng,
                 const MutationLimits& limits) {
  if (a.functions.size() + donor.functions.size() + 1 > limits.max_functions ||
      total_ops(a) + total_ops(donor) + 2 > limits.max_total_ops) {
    return a;
  }
  ProgramIr out = a;
  const std::size_t shift = out.functions.size();
  // Donor vuln-site ids are remapped past the host's maximum: the codegen
  // lowers each id to a program-global "vuln_<id>" label, and both sides
  // of the splice may carry the same ids.
  u64 vuln_shift = 0;
  for (const auto& fn : a.functions) {
    for (const Op& op : fn.body) {
      if (op.kind == OpKind::kVulnSite) {
        vuln_shift = std::max(vuln_shift, op.a + 1);
      }
    }
  }
  for (const FunctionIr& fn : donor.functions) {
    FunctionIr copy = fn;
    copy.name = "sp$" + std::to_string(shift) + "$" + fn.name;
    for (Op& op : copy.body) {
      if (is_call_like(op.kind)) op.a += shift;
      if (op.kind == OpKind::kSigaction) op.b += shift;
      if (op.kind == OpKind::kVulnSite) op.a += vuln_shift;
    }
    if (copy.tail_callee >= 0) copy.tail_callee += static_cast<i64>(shift);
    out.functions.push_back(std::move(copy));
  }
  FunctionIr driver;
  // Function names double as assembler labels and must stay unique across
  // repeated splices. The shift is strictly larger than any shift already
  // embedded in `a`'s names (programs only ever grow), and the "$$" cannot
  // collide with the "sp$<shift>$<name>" donor prefix.
  driver.name = "sp$" + std::to_string(shift) + "$$drv";
  const bool a_first = rng.next_bool();
  const u64 first = a_first ? a.entry : shift + donor.entry;
  const u64 second = a_first ? shift + donor.entry : a.entry;
  driver.body.push_back({OpKind::kCall, first, 1});
  driver.body.push_back({OpKind::kCall, second, 1});
  out.functions.push_back(std::move(driver));
  out.entry = out.functions.size() - 1;
#ifndef NDEBUG
  assert_valid(out, "splice");
#endif
  return out;
}

}  // namespace acs::fuzz
