#include "fuzz/feature.h"

namespace acs::fuzz {

std::size_t FeatureMap::novel_against(const FeatureMap& other) const {
  std::size_t novel = 0;
  for (const Feature f : features_) {
    if (other.features_.count(f) == 0) ++novel;
  }
  return novel;
}

u64 FeatureMap::fingerprint() const noexcept {
  u64 h = 1469598103934665603ULL;  // FNV-1a offset basis
  for (const Feature f : features_) {
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (f >> (8 * byte)) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

}  // namespace acs::fuzz
