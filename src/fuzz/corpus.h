// Coverage-driven corpus scheduler.
//
// The corpus keeps exactly the candidates that lit up at least one feature
// no earlier input did (classic coverage-guided feedback). Entries are
// appended in consideration order and the aggregate coverage map only ever
// grows — both facts the campaign's determinism contract relies on, since
// candidates are considered in trial-index order regardless of how many
// threads evaluated them.
#pragma once

#include <vector>

#include "compiler/ir.h"
#include "fuzz/feature.h"

namespace acs::fuzz {

struct CorpusEntry {
  compiler::ProgramIr ir;
  FeatureMap features;
  /// Features this entry contributed that no earlier entry had.
  std::size_t novelty = 0;
};

class Corpus {
 public:
  /// Keep `ir` iff `features` contains anything new; returns whether it
  /// was kept. Coverage is merged either way (it cannot grow on a
  /// non-novel candidate, by definition).
  bool consider(const compiler::ProgramIr& ir, const FeatureMap& features);

  [[nodiscard]] const std::vector<CorpusEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] const FeatureMap& coverage() const noexcept {
    return coverage_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

 private:
  std::vector<CorpusEntry> entries_;
  FeatureMap coverage_;
};

}  // namespace acs::fuzz
