#include "fuzz/corpus.h"

namespace acs::fuzz {

bool Corpus::consider(const compiler::ProgramIr& ir,
                      const FeatureMap& features) {
  const std::size_t novelty = features.novel_against(coverage_);
  if (novelty == 0) return false;
  coverage_.merge(features);
  entries_.push_back({ir, features, novelty});
  return true;
}

}  // namespace acs::fuzz
