// ddmin-style reproducer minimization (docs/fuzzing.md).
//
// Given a program on which some oracle fired and a predicate that re-runs
// the check, shrink the program to a (1-minimal over op chunks) reproducer:
// delta debugging over the flattened (function, op) site list, followed by
// cleanup passes that strip unreachable functions, tail calls and local
// buffers. Every candidate the minimizer proposes is structurally valid —
// op removal cannot break callee references or introduce call cycles — so
// the predicate alone decides what survives. Deterministic: the chunk
// schedule depends only on the input program.
#pragma once

#include <functional>

#include "compiler/ir.h"

namespace acs::fuzz {

/// Returns true while the failure of interest still reproduces.
using FailurePredicate = std::function<bool(const compiler::ProgramIr&)>;

struct MinimizeStats {
  std::size_t predicate_calls = 0;
  std::size_t ops_before = 0;
  std::size_t ops_after = 0;
};

/// Shrink `ir` while `still_fails` stays true. `still_fails(ir)` itself
/// must hold on entry (callers pass the program the oracle just flagged);
/// if it does not, the input is returned unchanged. `max_tests` bounds the
/// number of predicate evaluations.
[[nodiscard]] compiler::ProgramIr minimize_ir(
    const compiler::ProgramIr& ir, const FailurePredicate& still_fails,
    std::size_t max_tests = 2000, MinimizeStats* stats = nullptr);

}  // namespace acs::fuzz
