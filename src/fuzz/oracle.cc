#include "fuzz/oracle.h"

#include <algorithm>
#include <memory>
#include <sstream>

#include "compiler/codegen.h"
#include "compiler/interp.h"
#include "inject/engine.h"
#include "inject/plan.h"
#include "kernel/machine.h"
#include "obs/recorder.h"
#include "sim/fault.h"
#include "verify/cfg.h"

namespace acs::fuzz {
namespace {

using compiler::OpKind;
using compiler::ProgramIr;
using compiler::Scheme;

[[nodiscard]] u16 log2_bucket(u64 v) noexcept {
  u16 b = 0;
  while (v > 1) {
    v >>= 1;
    ++b;
  }
  return b;
}

[[nodiscard]] u8 scheme_tag(Scheme scheme) noexcept {
  return static_cast<u8>(1 + static_cast<u8>(scheme));
}

[[nodiscard]] bool has_op(const ProgramIr& ir, OpKind kind) {
  for (const auto& fn : ir.functions) {
    for (const auto& op : fn.body) {
      if (op.kind == kind) return true;
    }
  }
  return false;
}

/// Structural-property values for FeatureDomain::kIrShape.
enum IrShapeValue : u16 {
  kShapeHasTailCall = 1,
  kShapeSpillsCr = 2,
  kShapeHasLeaf = 3,
  kShapeHasLocals = 4,
  kShapeHasWildAccess = 5,  ///< absolute access near the top of the space
  kShapeFnCountBase = 0x10,  ///< + log2 bucket of the function count
  kShapeOpCountBase = 0x20,  ///< + log2 bucket of the total op count
};

void add_ir_features(const ProgramIr& ir, FeatureMap& features) {
  std::size_t total_ops = 0;
  for (const auto& fn : ir.functions) {
    total_ops += fn.body.size();
    for (const auto& op : fn.body) {
      features.add(make_feature(FeatureDomain::kIrOp, 0,
                                static_cast<u16>(op.kind)));
      if (compiler::is_wild_access(op)) {
        features.add(
            make_feature(FeatureDomain::kIrShape, 0, kShapeHasWildAccess));
      }
    }
    if (fn.tail_callee >= 0) {
      features.add(make_feature(FeatureDomain::kIrShape, 0, kShapeHasTailCall));
    }
    if (fn.spills_cr) {
      features.add(make_feature(FeatureDomain::kIrShape, 0, kShapeSpillsCr));
    }
    if (fn.is_leaf()) {
      features.add(make_feature(FeatureDomain::kIrShape, 0, kShapeHasLeaf));
    }
    if (fn.local_bytes > 0) {
      features.add(make_feature(FeatureDomain::kIrShape, 0, kShapeHasLocals));
    }
  }
  features.add(make_feature(
      FeatureDomain::kIrShape, 0,
      kShapeFnCountBase + log2_bucket(ir.functions.size())));
  features.add(make_feature(FeatureDomain::kIrShape, 0,
                            kShapeOpCountBase + log2_bucket(total_ops)));
}

/// Per-scheme instrumentation decisions: for each function, the combo of
/// (instrumented, canary, tail, leaf) the lowering chose.
void add_lowering_features(const ProgramIr& ir, Scheme scheme,
                           FeatureMap& features) {
  const auto lowering = compiler::make_scheme(scheme);
  for (const auto& fn : ir.functions) {
    u16 combo = 0;
    if (lowering->instruments(fn)) combo |= 1;
    if (lowering->wants_canary(fn)) combo |= 2;
    if (fn.tail_callee >= 0) combo |= 4;
    if (fn.is_leaf()) combo |= 8;
    features.add(
        make_feature(FeatureDomain::kLowering, scheme_tag(scheme), combo));
  }
}

/// Per-function CFG shape combos from the static verifier's reconstruction.
enum CfgValue : u16 {
  kCfgSignalHandlers = 0x100,
};

void add_cfg_features(const sim::Program& program, FeatureMap& features) {
  const verify::ProgramCfg cfg = verify::build_cfg(program);
  for (const auto& fn : cfg.functions) {
    u16 combo = 0;
    if (fn.has_indirect_call) combo |= 1;
    if (!fn.tail_callees.empty()) combo |= 2;
    if (!fn.setjmp_continuations.empty()) combo |= 4;
    if (!fn.catch_pads.empty()) combo |= 8;
    if (!fn.address_taken.empty()) combo |= 16;
    if (fn.calls_longjmp) combo |= 32;
    features.add(make_feature(FeatureDomain::kCfg, 0, combo));
  }
  if (!cfg.signal_handlers.empty()) {
    features.add(make_feature(FeatureDomain::kCfg, 0, kCfgSignalHandlers));
  }
}

void add_metrics_features(const obs::Metrics& metrics, Scheme scheme,
                          FeatureMap& features) {
  for (const auto& [name, value] : metrics.counters()) {
    if (value == 0) continue;
    const u16 id = static_cast<u16>(feature_hash(name.c_str()) ^
                                    log2_bucket(value));
    features.add(make_feature(FeatureDomain::kRuntime, scheme_tag(scheme), id));
  }
  const auto depth_features = [&](const char* hist_name, u16 base) {
    const auto it = metrics.histograms().find(hist_name);
    if (it == metrics.histograms().end()) return;
    const auto& counts = it->second.counts();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] > 0) {
        features.add(make_feature(FeatureDomain::kDepth, scheme_tag(scheme),
                                  static_cast<u16>(base + i)));
      }
    }
  };
  depth_features("sim.call.depth", 0);
  depth_features("chain.depth", 0x40);
}

/// FeatureDomain::kFault value layout.
enum FaultValue : u16 {
  kFaultDeliveredBase = 0x00,   ///< + inject::FaultKind index
  kFaultKilledBase = 0x20,      ///< + sim::FaultKind of the kill
  kFaultSurvivedInjection = 0x40,
};

/// One machine execution of an already-compiled program.
struct RunOutcome {
  kernel::ProcessState state = kernel::ProcessState::kLive;
  std::vector<u64> output;
  sim::FaultKind kill = sim::FaultKind::kNone;
  std::string kill_reason;
  bool budget_blown = false;
  obs::Metrics metrics;
};

/// Every oracle execution forks a pristine master machine copy-on-write:
/// compile → build master once per scheme, then fork per run. A fork of an
/// unrun master is bit-identical to a machine freshly constructed from the
/// program, so oracle verdicts are unchanged — only the per-run map/init
/// cost disappears.
RunOutcome run_machine(const kernel::Machine& master, u64 budget,
                       inject::Engine* injector, obs::Recorder* recorder) {
  kernel::MachineOptions options;
  options.recorder = recorder;
  options.injector = injector;
  kernel::Machine machine(master, options);
  const kernel::Stop stop = machine.run(budget);
  RunOutcome outcome;
  outcome.budget_blown = stop.reason == kernel::StopReason::kMaxInstructions;
  auto& process = machine.init_process();
  outcome.state = process.state;
  outcome.output = process.output;
  outcome.kill = process.kill_fault.kind;
  outcome.kill_reason = process.kill_reason;
  if (recorder != nullptr) outcome.metrics = recorder->metrics();
  return outcome;
}

std::string render_output(const std::vector<u64>& output) {
  std::ostringstream out;
  out << "[";
  for (std::size_t i = 0; i < output.size(); ++i) {
    if (i > 0) out << " ";
    out << output[i];
  }
  out << "]";
  return out.str();
}

/// Canonical outcome string for cross-scheme comparison. Threaded programs
/// compare by outcome kind only: unjoined threads run for however many
/// cycles the main thread happens to take before exiting, and schemes have
/// different instruction counts — identical scheduling progress across
/// schemes is NOT a pipeline invariant (the confirm suite's `threads`
/// program relies on exactly this slack).
std::string outcome_key(const RunOutcome& outcome, bool threaded) {
  if (outcome.state == kernel::ProcessState::kKilled) {
    return "killed:" + sim::fault_name(outcome.kill);
  }
  if (threaded) return "exited";
  return "exited:" + render_output(outcome.output);
}

/// Multiset containment over sorted vectors: every element of `sub` occurs
/// in `super` at least as often.
[[nodiscard]] bool is_submultiset(const std::vector<u64>& sub,
                                  const std::vector<u64>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

}  // namespace

const char* oracle_name(OracleKind kind) noexcept {
  switch (kind) {
    case OracleKind::kGoldenDiff: return "golden-diff";
    case OracleKind::kCrossSchemeDiff: return "cross-scheme-diff";
    case OracleKind::kLint: return "lint";
    case OracleKind::kFaultSurvival: return "fault-survival";
  }
  return "unknown";
}

std::vector<verify::Code> expected_lint_codes(Scheme scheme) {
  using verify::Code;
  switch (scheme) {
    case Scheme::kNone:
    case Scheme::kCanary:
      return {Code::kRawRetReuse};
    case Scheme::kPacRet:
    case Scheme::kPacRetLeaf:
      return {Code::kSignedRetSpill};
    case Scheme::kPacStackNoMask:
      return {Code::kUnmaskedAretSpill};
    case Scheme::kPacStack:
    case Scheme::kShadowStack:
      return {};
  }
  return {};
}

EvalResult evaluate_program(const ProgramIr& ir, const OracleConfig& config) {
  EvalResult result;
  const std::vector<Scheme>& schemes =
      config.schemes.empty() ? compiler::all_schemes() : config.schemes;

  const auto golden = compiler::interpret(ir, config.golden_max_ops);
  if (golden.supported && !golden.completed) {
    return result;  // generator blow-up; nothing to compare
  }
  result.golden_supported = golden.supported;

  const bool order_insensitive = has_op(ir, OpKind::kThreadCreate);
  std::vector<u64> golden_output = golden.output;
  if (order_insensitive) {
    std::sort(golden_output.begin(), golden_output.end());
  }

  add_ir_features(ir, result.features);

  bool cfg_features_done = false;
  std::string first_key;
  Scheme first_scheme = Scheme::kNone;
  std::vector<std::pair<Scheme, RunOutcome>> baselines;
  // One pristine master machine per scheme: the baseline run below and any
  // fault-oracle re-execution fork it CoW instead of rebuilding (and
  // recompiling, in the fault oracle's case) from scratch.
  std::vector<std::pair<Scheme, std::unique_ptr<kernel::Machine>>> masters;
  for (const Scheme scheme : schemes) {
    add_lowering_features(ir, scheme, result.features);
    const auto program = compiler::compile_ir(
        ir, {.scheme = scheme, .uninstrumented = config.uninstrumented});

    if (config.run_lint_oracle) {
      const verify::Report report = verify::verify_program(program, scheme);
      const auto expected = expected_lint_codes(scheme);
      for (const verify::Code code : report.codes()) {
        if (std::find(expected.begin(), expected.end(), code) ==
            expected.end()) {
          result.findings.push_back(
              {OracleKind::kLint, scheme,
               "unexpected " + verify::code_name(code) + " under " +
                   compiler::scheme_name(scheme)});
        }
      }
    }

    // The CFG shape is scheme-coloured but the interesting edges (tail,
    // setjmp continuation, catch pad, indirect) exist under every scheme;
    // analysing one compiled image bounds the cost.
    if (!cfg_features_done) {
      add_cfg_features(program, result.features);
      cfg_features_done = true;
    }

    masters.emplace_back(scheme, std::make_unique<kernel::Machine>(
                                     program, kernel::MachineOptions{}));
    obs::Recorder recorder;
    RunOutcome outcome = run_machine(*masters.back().second,
                                     config.machine_budget, nullptr, &recorder);
    ++result.executions;
    if (outcome.budget_blown ||
        outcome.state == kernel::ProcessState::kLive) {
      return EvalResult{};  // discard: hang or deadlock, not comparable
    }
    add_metrics_features(outcome.metrics, scheme, result.features);
    if (outcome.state == kernel::ProcessState::kKilled) {
      result.features.add(make_feature(
          FeatureDomain::kFault, scheme_tag(scheme),
          kFaultKilledBase + static_cast<u16>(outcome.kill)));
    }

    const std::string key = outcome_key(outcome, order_insensitive);
    if (golden.supported) {
      std::vector<u64> output = outcome.output;
      if (order_insensitive) std::sort(output.begin(), output.end());
      // Threaded programs: the main thread's output is always complete but
      // unjoined workers only get whatever cycles remain before the process
      // exits, so the machine may observe a truncation of the golden
      // (run-to-completion) output — require multiset containment instead
      // of equality. Thread-free programs compare exactly.
      const bool diverged =
          order_insensitive ? !is_submultiset(output, golden_output)
                            : output != golden_output;
      if (outcome.state != kernel::ProcessState::kExited) {
        result.findings.push_back(
            {OracleKind::kGoldenDiff, scheme,
             "killed (" + outcome.kill_reason + ") but golden model exits " +
                 render_output(golden_output)});
      } else if (diverged) {
        result.findings.push_back(
            {OracleKind::kGoldenDiff, scheme,
             "output " + render_output(output) +
                 (order_insensitive ? " not contained in golden "
                                    : " != golden ") +
                 render_output(golden_output)});
      }
    }
    if (first_key.empty()) {
      first_key = key;
      first_scheme = scheme;
    } else if (key != first_key) {
      result.findings.push_back(
          {OracleKind::kCrossSchemeDiff, scheme,
           compiler::scheme_name(scheme) + " " + key + " != " +
               compiler::scheme_name(first_scheme) + " " + first_key});
    }
    baselines.emplace_back(scheme, std::move(outcome));
  }

  // Fault survival: only sound on programs whose stack frames hold nothing
  // but frame records — no locals and no repeat-counted calls (the codegen
  // lowers those to memory-resident loop counters). A flipped data slot
  // silently corrupts output under any scheme (see oracle.h). Threads are
  // excluded too: unjoined-thread progress makes outputs
  // schedule-dependent.
  bool data_free = true;
  for (const auto& fn : ir.functions) {
    if (fn.local_bytes > 0) data_free = false;
    for (const auto& op : fn.body) {
      if (op.kind == OpKind::kCall && op.b > 1) data_free = false;
    }
  }
  if (config.run_fault_oracle && data_free && !order_insensitive) {
    for (const Scheme scheme : config.fault_schemes) {
      const RunOutcome* baseline = nullptr;
      const kernel::Machine* master = nullptr;
      for (std::size_t i = 0; i < baselines.size(); ++i) {
        if (baselines[i].first == scheme) {
          baseline = &baselines[i].second;
          master = masters[i].second.get();
        }
      }
      if (baseline == nullptr ||
          baseline->state != kernel::ProcessState::kExited) {
        continue;  // program already dies without injection
      }
      inject::PlanConfig plan_config;
      plan_config.seed = config.fault_seed;
      plan_config.horizon = config.machine_budget;
      plan_config.mean_interval = config.fault_mean_interval;
      plan_config.kinds = {inject::FaultKind::kRetSlotBitflip};
      inject::Engine engine({.plan = inject::make_plan(plan_config)});
      // Re-fork the scheme's pristine master (same image the baseline ran
      // from) rather than recompiling the program for the injected run.
      const RunOutcome outcome =
          run_machine(*master, config.machine_budget, &engine, nullptr);
      ++result.executions;
      if (outcome.budget_blown) continue;
      for (std::size_t i = 0; i < inject::kNumFaultKinds; ++i) {
        if (engine.summary().injected[i] > 0) {
          result.features.add(make_feature(
              FeatureDomain::kFault, scheme_tag(scheme),
              kFaultDeliveredBase + static_cast<u16>(i)));
        }
      }
      if (outcome.state == kernel::ProcessState::kKilled) {
        result.features.add(make_feature(
            FeatureDomain::kFault, scheme_tag(scheme),
            kFaultKilledBase + static_cast<u16>(outcome.kill)));
        continue;  // detection — the scheme did its job
      }
      const std::vector<u64>& injected_output = outcome.output;
      const std::vector<u64>& baseline_output = baseline->output;
      if (injected_output != baseline_output) {
        result.findings.push_back(
            {OracleKind::kFaultSurvival, scheme,
             "silent corruption: " + render_output(injected_output) +
                 " != baseline " + render_output(baseline_output) + " after " +
                 std::to_string(engine.summary().total_injected()) +
                 " injected fault(s)"});
      } else {
        result.features.add(make_feature(FeatureDomain::kFault,
                                         scheme_tag(scheme),
                                         kFaultSurvivedInjection));
      }
    }
  }

  result.viable = true;
  return result;
}

FeatureMap ir_features(const ProgramIr& ir) {
  FeatureMap features;
  add_ir_features(ir, features);
  return features;
}

bool maps_to_static(const ProgramIr& ir, const Finding& finding) {
  switch (finding.oracle) {
    case OracleKind::kLint:
      return true;
    case OracleKind::kGoldenDiff:
    case OracleKind::kCrossSchemeDiff:
      return true;  // semantics findings, outside the audit's scope
    case OracleKind::kFaultSurvival: {
      const auto program =
          compiler::compile_ir(ir, {.scheme = finding.scheme});
      const verify::Report report =
          verify::verify_program(program, finding.scheme);
      const auto expected = expected_lint_codes(finding.scheme);
      for (const verify::Code code : report.codes()) {
        if (std::find(expected.begin(), expected.end(), code) ==
            expected.end()) {
          return true;
        }
      }
      return false;
    }
  }
  return false;
}

}  // namespace acs::fuzz
