// Structural mutations over compiler::ProgramIr.
//
// The corpus scheduler does not generate blind: it perturbs programs that
// already light up interesting lowering paths. Mutations preserve the IR
// validity invariants the rest of the pipeline assumes — callee indices in
// range, no call cycles (the IR has no conditionals, so any cycle is an
// infinite loop), store/load offsets inside the local buffer — and stay
// inside the golden-comparable op subset (no fork/raise/sigaction/
// write_reg, whose interleaving or OS semantics the sequential golden
// model cannot mirror; seeds from the confirm suite may still carry them).
#pragma once

#include "common/rng.h"
#include "compiler/ir.h"

namespace acs::fuzz {

struct MutationLimits {
  std::size_t max_functions = 20;
  std::size_t max_total_ops = 160;
  u64 max_compute = 48;
  u64 max_repeat = 3;
};

/// True iff the static call graph (call/call_indirect/call_via_slot/
/// thread_create/sigaction-handler/tail edges) has no cycle.
[[nodiscard]] bool is_acyclic(const compiler::ProgramIr& ir);

/// Total op count across all function bodies (the reproducer size metric).
[[nodiscard]] std::size_t total_ops(const compiler::ProgramIr& ir);

/// Apply one random mutation (op insert/delete, callee rewire, constant
/// tweak, tail-call toggle, matched setjmp/longjmp or catch/throw pair
/// insertion). The result is always valid and acyclic; if a drawn mutation
/// cannot apply (e.g. delete on an empty body), another is tried, and after
/// a bounded number of attempts the input is returned unchanged.
[[nodiscard]] compiler::ProgramIr mutate(const compiler::ProgramIr& ir,
                                         Rng& rng,
                                         const MutationLimits& limits = {});

/// Splice: append `donor`'s functions (callee indices shifted) and replace
/// the entry with a fresh driver that calls both entries. Returns the
/// spliced program, or a copy of `a` if the result would exceed `limits`.
[[nodiscard]] compiler::ProgramIr splice(const compiler::ProgramIr& a,
                                         const compiler::ProgramIr& donor,
                                         Rng& rng,
                                         const MutationLimits& limits = {});

}  // namespace acs::fuzz
