#include "fuzz/minimize.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "fuzz/mutate.h"

namespace acs::fuzz {
namespace {

using compiler::FunctionIr;
using compiler::Op;
using compiler::OpKind;
using compiler::ProgramIr;

using Site = std::pair<std::size_t, std::size_t>;  // (function, op index)

std::vector<Site> all_sites(const ProgramIr& ir) {
  std::vector<Site> sites;
  for (std::size_t f = 0; f < ir.functions.size(); ++f) {
    for (std::size_t o = 0; o < ir.functions[f].body.size(); ++o) {
      sites.emplace_back(f, o);
    }
  }
  return sites;
}

/// The program containing only the ops named in `keep` (sorted).
ProgramIr project(const ProgramIr& ir, const std::vector<Site>& keep) {
  ProgramIr out = ir;
  for (auto& fn : out.functions) fn.body.clear();
  for (const auto& [f, o] : keep) {
    out.functions[f].body.push_back(ir.functions[f].body[o]);
  }
  return out;
}

/// Drop functions unreachable from the entry, remapping callee indices.
/// Returns false when nothing would change.
bool strip_unreachable(const ProgramIr& ir, ProgramIr& out) {
  std::vector<bool> live(ir.functions.size(), false);
  std::vector<std::size_t> work{ir.entry};
  live[ir.entry] = true;
  while (!work.empty()) {
    const std::size_t f = work.back();
    work.pop_back();
    const auto mark = [&](std::size_t callee) {
      if (!live[callee]) {
        live[callee] = true;
        work.push_back(callee);
      }
    };
    const FunctionIr& fn = ir.functions[f];
    for (const Op& op : fn.body) {
      switch (op.kind) {
        case OpKind::kCall:
        case OpKind::kCallIndirect:
        case OpKind::kCallViaSlot:
        case OpKind::kThreadCreate:
          mark(op.a);
          break;
        case OpKind::kSigaction:
          mark(op.b);
          break;
        default:
          break;
      }
    }
    if (fn.tail_callee >= 0) mark(static_cast<std::size_t>(fn.tail_callee));
  }
  std::vector<std::size_t> remap(ir.functions.size(), 0);
  std::size_t next = 0;
  for (std::size_t f = 0; f < ir.functions.size(); ++f) {
    if (live[f]) remap[f] = next++;
  }
  if (next == ir.functions.size()) return false;
  out = ProgramIr{};
  for (std::size_t f = 0; f < ir.functions.size(); ++f) {
    if (!live[f]) continue;
    FunctionIr fn = ir.functions[f];
    for (Op& op : fn.body) {
      switch (op.kind) {
        case OpKind::kCall:
        case OpKind::kCallIndirect:
        case OpKind::kCallViaSlot:
        case OpKind::kThreadCreate:
          op.a = remap[op.a];
          break;
        case OpKind::kSigaction:
          op.b = remap[op.b];
          break;
        default:
          break;
      }
    }
    if (fn.tail_callee >= 0) {
      fn.tail_callee =
          static_cast<i64>(remap[static_cast<std::size_t>(fn.tail_callee)]);
    }
    out.functions.push_back(std::move(fn));
  }
  out.entry = remap[ir.entry];
  return true;
}

}  // namespace

ProgramIr minimize_ir(const ProgramIr& ir, const FailurePredicate& still_fails,
                      std::size_t max_tests, MinimizeStats* stats) {
  MinimizeStats local;
  MinimizeStats& st = stats != nullptr ? *stats : local;
  st.ops_before = total_ops(ir);

  const auto check = [&](const ProgramIr& candidate) {
    ++st.predicate_calls;
    return still_fails(candidate);
  };

  if (!check(ir)) {
    st.ops_after = st.ops_before;
    return ir;
  }

  // Classic ddmin over the op-site list: try removing ever-finer chunks.
  std::vector<Site> sites = all_sites(ir);
  std::size_t n = 2;
  while (sites.size() >= 2 && st.predicate_calls < max_tests) {
    const std::size_t chunk = std::max<std::size_t>(1, sites.size() / n);
    bool reduced = false;
    for (std::size_t start = 0;
         start < sites.size() && st.predicate_calls < max_tests;
         start += chunk) {
      std::vector<Site> keep;
      keep.reserve(sites.size());
      const std::size_t end = std::min(sites.size(), start + chunk);
      for (std::size_t i = 0; i < sites.size(); ++i) {
        if (i < start || i >= end) keep.push_back(sites[i]);
      }
      if (keep.size() == sites.size()) continue;
      if (check(project(ir, keep))) {
        sites = std::move(keep);
        n = std::max<std::size_t>(2, n - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (n >= sites.size()) break;
      n = std::min(sites.size(), n * 2);
    }
  }
  ProgramIr best = project(ir, sites);

  // Cleanup passes (each kept only if the failure survives).
  for (std::size_t f = 0;
       f < best.functions.size() && st.predicate_calls < max_tests; ++f) {
    if (best.functions[f].tail_callee >= 0) {
      ProgramIr candidate = best;
      candidate.functions[f].tail_callee = -1;
      if (check(candidate)) best = std::move(candidate);
    }
    if (best.functions[f].local_bytes > 0) {
      ProgramIr candidate = best;
      candidate.functions[f].local_bytes = 0;
      if (check(candidate)) best = std::move(candidate);
    }
  }
  if (st.predicate_calls < max_tests) {
    ProgramIr stripped;
    if (strip_unreachable(best, stripped) && check(stripped)) {
      best = std::move(stripped);
    }
  }

  st.ops_after = total_ops(best);
  return best;
}

}  // namespace acs::fuzz
