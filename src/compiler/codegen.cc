#include "compiler/codegen.h"

#include <algorithm>
#include <stdexcept>

#include "kernel/machine.h"
#include "kernel/syscalls.h"
#include "sim/assembler.h"

namespace acs::compiler {

using sim::AddrMode;
using sim::Assembler;
using sim::Reg;
using sim::kCr;
using sim::kLr;
using sim::kScratch;
using sim::kSsp;

namespace {

constexpr Reg kTmp0 = Reg::kX9;
constexpr Reg kTmp1 = Reg::kX10;

[[nodiscard]] constexpr u64 align16(u64 bytes) noexcept {
  return (bytes + 15U) & ~u64{15};
}

/// Per-function frame layout: [sp+0, locals) buffer, then loop-counter
/// slots, then (optionally) the canary — so a contiguous overflow from the
/// buffer walks over the counters and the canary before reaching the saved
/// frame record, as on a real downward-growing AArch64 stack frame.
struct FrameLayout {
  u64 locals = 0;
  u64 counter_base = 0;
  u64 counters = 0;
  bool canary = false;
  u64 canary_offset = 0;
  bool cr_spill = false;
  u64 cr_spill_offset = 0;
  u64 frame_bytes = 0;
};

[[nodiscard]] FrameLayout plan_frame(const FunctionIr& fn, bool canary,
                                     bool cr_spill) {
  FrameLayout layout;
  layout.locals = fn.local_bytes;
  layout.counter_base = fn.local_bytes;
  for (const auto& op : fn.body) {
    if (op.kind == OpKind::kCall && op.b > 1) ++layout.counters;
  }
  u64 top = layout.counter_base + layout.counters * 8;
  layout.canary = canary;
  if (canary) {
    layout.canary_offset = top;
    top += 8;
  }
  layout.cr_spill = cr_spill;
  if (cr_spill) {
    layout.cr_spill_offset = top;
    top += 8;
  }
  layout.frame_bytes = align16(top);
  return layout;
}

class FunctionLowerer {
 public:
  FunctionLowerer(Assembler& as, const ProgramIr& ir, const FunctionIr& fn,
                  std::size_t fn_index, const LoweringScheme& scheme,
                  bool uninstrumented)
      : as_(as), ir_(ir), fn_(fn), fn_index_(fn_index), scheme_(scheme),
        ctx_{&fn, scheme.instruments(fn)},
        layout_(plan_frame(fn, scheme.wants_canary(fn),
                           uninstrumented && fn.spills_cr)) {}

  [[nodiscard]] sim::UnwindInfo lower() {
    unwind_.entry = as_.here();
    unwind_.kind = unwind_kind();
    unwind_.prologue_bytes = prologue_bytes();
    unwind_.frame_bytes = layout_.frame_bytes;

    as_.function(fn_.name);
    scheme_.prologue(as_, ctx_);
    if (layout_.frame_bytes > 0) {
      as_.sub_imm(Reg::kSp, Reg::kSp, static_cast<i64>(layout_.frame_bytes));
    }
    if (layout_.canary) emit_canary_store();
    if (layout_.cr_spill) {
      // Section 9.2 hazard: unprotected code that uses X28 saves the chain
      // register to its ordinary (attacker-writable) stack frame and uses
      // the register for its own purposes.
      as_.str(kCr, Reg::kSp, static_cast<i64>(layout_.cr_spill_offset));
      as_.mov(kCr, Reg::kXzr);
    }

    u64 counter_slot = 0;
    for (std::size_t op_index = 0; op_index < fn_.body.size(); ++op_index) {
      lower_op(fn_.body[op_index], op_index, counter_slot);
    }

    as_.label(epilogue_label());
    if (layout_.cr_spill) {
      as_.ldr(kCr, Reg::kSp, static_cast<i64>(layout_.cr_spill_offset));
    }
    if (layout_.canary) emit_canary_check();
    if (layout_.frame_bytes > 0) {
      as_.add_imm(Reg::kSp, Reg::kSp, static_cast<i64>(layout_.frame_bytes));
    }
    if (fn_.tail_callee >= 0) {
      // Listing 8: the verify sequence runs, then a plain `b` transfers to
      // the tail callee, which will re-sign LR in its own prologue.
      scheme_.epilogue(as_, ctx_, /*emit_ret=*/false);
      as_.b(ir_.fn(static_cast<std::size_t>(fn_.tail_callee)).name);
    } else {
      scheme_.epilogue(as_, ctx_, /*emit_ret=*/true);
    }
    unwind_.end = as_.here();
    return std::move(unwind_);
  }

 private:
  /// Stack bytes the scheme prologue reserves (for the unwinder).
  [[nodiscard]] u64 prologue_bytes() const {
    if (!ctx_.instrumented) return 0;
    switch (scheme_.id()) {
      case Scheme::kPacStack:
      case Scheme::kPacStackNoMask:
        return 32;
      case Scheme::kPacRetLeaf:
        return fn_.is_leaf() ? 0 : 16;
      case Scheme::kNone:
      case Scheme::kCanary:
      case Scheme::kPacRet:
      case Scheme::kShadowStack:
        return 16;
    }
    return 0;
  }

  [[nodiscard]] sim::UnwindKind unwind_kind() const {
    using sim::UnwindKind;
    if (!ctx_.instrumented) return UnwindKind::kNoFrame;
    switch (scheme_.id()) {
      case Scheme::kPacStack: return UnwindKind::kAcsChainMasked;
      case Scheme::kPacStackNoMask: return UnwindKind::kAcsChainUnmasked;
      case Scheme::kPacRet: return UnwindKind::kSignedFrameRecord;
      case Scheme::kPacRetLeaf:
        return fn_.is_leaf() ? UnwindKind::kSignedNoFrame
                             : UnwindKind::kSignedFrameRecord;
      case Scheme::kShadowStack: return UnwindKind::kShadowStack;
      case Scheme::kNone:
      case Scheme::kCanary:
        return UnwindKind::kFrameRecord;
    }
    return UnwindKind::kNoFrame;
  }

  [[nodiscard]] std::string local_label(std::size_t op_index,
                                        const char* tag) const {
    return "L" + std::to_string(fn_index_) + "_" + std::to_string(op_index) +
           "_" + tag;
  }

  [[nodiscard]] std::string epilogue_label() const {
    return "Lepi_" + std::to_string(fn_index_);
  }

  void emit_canary_store() {
    as_.mov_imm(kTmp0, kernel::kCanarySlot);
    as_.ldr(kTmp0, kTmp0);
    as_.str(kTmp0, Reg::kSp, static_cast<i64>(layout_.canary_offset));
  }

  void emit_canary_check() {
    const std::string ok = "Lcanary_ok_" + std::to_string(fn_index_);
    as_.ldr(kTmp0, Reg::kSp, static_cast<i64>(layout_.canary_offset));
    as_.mov_imm(kTmp1, kernel::kCanarySlot);
    as_.ldr(kTmp1, kTmp1);
    as_.cmp(kTmp0, kTmp1);
    as_.b_cond(sim::Cond::kEq, ok);
    as_.svc(static_cast<u16>(kernel::Syscall::kAbort));
    as_.label(ok);
  }

  void lower_op(const Op& op, std::size_t op_index, u64& counter_slot) {
    switch (op.kind) {
      case OpKind::kCompute:
        as_.work(static_cast<u32>(op.a));
        break;
      case OpKind::kCall: {
        const std::string& callee = ir_.fn(op.a).name;
        if (op.b <= 1) {
          as_.bl(callee);
          break;
        }
        // Loop with a memory-resident counter so no callee-saved register
        // is needed across the calls.
        const i64 slot = static_cast<i64>(layout_.counter_base +
                                          counter_slot * 8);
        ++counter_slot;
        const std::string loop = local_label(op_index, "loop");
        const std::string done = local_label(op_index, "done");
        as_.mov_imm(kTmp0, op.b);
        as_.str(kTmp0, Reg::kSp, slot);
        as_.label(loop);
        as_.ldr(kTmp0, Reg::kSp, slot);
        as_.cbz(kTmp0, done);
        as_.sub_imm(kTmp0, kTmp0, 1);
        as_.str(kTmp0, Reg::kSp, slot);
        as_.bl(callee);
        as_.b(loop);
        as_.label(done);
        break;
      }
      case OpKind::kCallIndirect:
        as_.mov_label(kTmp0, ir_.fn(op.a).name);
        as_.blr(kTmp0);
        break;
      case OpKind::kCallViaSlot:
        as_.mov_imm(kTmp0, fn_ptr_addr(op.b));
        as_.ldr(kTmp0, kTmp0);
        as_.blr(kTmp0);
        break;
      case OpKind::kVulnSite:
        as_.label("vuln_" + std::to_string(op.a));
        as_.nop();
        break;
      case OpKind::kWriteInt:
        as_.mov_imm(Reg::kX0, op.a);
        as_.svc(static_cast<u16>(kernel::Syscall::kWriteInt));
        break;
      case OpKind::kWriteReg:
        as_.svc(static_cast<u16>(kernel::Syscall::kWriteInt));
        break;
      case OpKind::kSetjmp: {
        const std::string cont = local_label(op_index, "sj_cont");
        as_.mov_imm(Reg::kX0, jmp_buf_addr(op.a));
        as_.bl(scheme_.setjmp_symbol());
        as_.cbz(Reg::kX0, cont);
        // Non-zero: we arrived via longjmp — log the value and return.
        as_.svc(static_cast<u16>(kernel::Syscall::kWriteInt));
        as_.b(epilogue_label());
        as_.label(cont);
        break;
      }
      case OpKind::kLongjmp:
        as_.mov_imm(Reg::kX0, jmp_buf_addr(op.a));
        as_.mov_imm(Reg::kX1, op.b);
        as_.bl(scheme_.longjmp_symbol());
        break;
      case OpKind::kThreadCreate:
        as_.mov_label(Reg::kX0, ir_.fn(op.a).name);
        as_.mov_imm(Reg::kX1, op.b);
        as_.svc(static_cast<u16>(kernel::Syscall::kThreadCreate));
        break;
      case OpKind::kYield:
        as_.svc(static_cast<u16>(kernel::Syscall::kYield));
        break;
      case OpKind::kStoreLocal:
        if (op.a >= kWildAccessBase) {
          // Wild access: the offset is an absolute address (see ir.h).
          as_.mov_imm(kTmp0, op.b);
          as_.mov_imm(kTmp1, op.a);
          as_.str(kTmp0, kTmp1);
        } else {
          as_.mov_imm(kTmp0, op.b);
          as_.str(kTmp0, Reg::kSp, static_cast<i64>(op.a));
        }
        break;
      case OpKind::kLoadLocal:
        if (op.a >= kWildAccessBase) {
          as_.mov_imm(kTmp0, op.a);
          as_.ldr(kTmp0, kTmp0);
        } else {
          as_.ldr(kTmp0, Reg::kSp, static_cast<i64>(op.a));
        }
        break;
      case OpKind::kSigaction:
        as_.mov_imm(Reg::kX0, op.a);
        as_.mov_label(Reg::kX1, ir_.fn(op.b).name);
        as_.svc(static_cast<u16>(kernel::Syscall::kSigaction));
        break;
      case OpKind::kRaise:
        as_.svc(static_cast<u16>(kernel::Syscall::kGetPid));  // X0 <- pid
        as_.mov_imm(Reg::kX1, op.a);
        as_.svc(static_cast<u16>(kernel::Syscall::kKill));
        break;
      case OpKind::kFork:
        as_.svc(static_cast<u16>(kernel::Syscall::kFork));
        break;
      case OpKind::kThreadJoin:
        as_.mov_imm(Reg::kX0, op.a);
        as_.svc(static_cast<u16>(kernel::Syscall::kThreadJoin));
        break;
      case OpKind::kCatchPoint: {
        // Landing pad: normal execution skips it; a kernel-dispatched
        // throw lands on the pad with the thrown value in X0, logs it and
        // returns from the function (mirrors the setjmp lowering).
        const std::string skip = local_label(op_index, "catch_skip");
        as_.b(skip);
        const u64 pad = as_.here();
        unwind_.catches.emplace_back(op.a, pad);
        as_.svc(static_cast<u16>(kernel::Syscall::kWriteInt));
        as_.b(epilogue_label());
        as_.label(skip);
        break;
      }
      case OpKind::kThrow:
        as_.mov_imm(Reg::kX0, op.a);
        as_.mov_imm(Reg::kX1, op.b);
        as_.svc(static_cast<u16>(kernel::Syscall::kThrow));
        as_.hlt();  // unreachable: the kernel transfers control
        break;
    }
  }

  Assembler& as_;
  const ProgramIr& ir_;
  const FunctionIr& fn_;
  std::size_t fn_index_;
  const LoweringScheme& scheme_;
  FrameCtx ctx_;
  FrameLayout layout_;
  sim::UnwindInfo unwind_;
};

void emit_runtime(Assembler& as, const ProgramIr& ir) {
  // main: call the entry function, then exit(0).
  as.function("main");
  as.bl(ir.fn(ir.entry).name);
  as.mov_imm(Reg::kX0, 0);
  as.svc(static_cast<u16>(kernel::Syscall::kExit));
  as.hlt();

  // Thread-exit stub: new threads get this as their initial LR.
  as.function("__thread_exit");
  as.svc(static_cast<u16>(kernel::Syscall::kThreadExit));
  as.hlt();

  // Signal trampoline: handlers return here (Section 6.3.2).
  as.function("__sigtramp");
  as.svc(static_cast<u16>(kernel::Syscall::kSigreturn));
  as.hlt();

  // Plain setjmp/longjmp. jmp_buf: [0]=LR, [8]=X28, [16]=SP, [24]=X18.
  as.function("__setjmp");
  as.str(kLr, Reg::kX0, 0);
  as.str(kCr, Reg::kX0, 8);
  as.mov(kTmp0, Reg::kSp);
  as.str(kTmp0, Reg::kX0, 16);
  as.str(kSsp, Reg::kX0, 24);
  as.mov_imm(Reg::kX0, 0);
  as.ret();

  as.function("__longjmp");
  as.ldr(kLr, Reg::kX0, 0);
  as.ldr(kCr, Reg::kX0, 8);
  as.ldr(kTmp0, Reg::kX0, 16);
  as.mov(Reg::kSp, kTmp0);
  as.ldr(kSsp, Reg::kX0, 24);
  as.mov(Reg::kX0, Reg::kX1);
  as.ret();

  // PACStack wrappers (Section 5.3, Listings 4-5): the setjmp return
  // address is authenticated and additionally bound to the SP value before
  // being stored; longjmp re-derives and verifies it.
  as.function("__acs_setjmp");
  as.mov(kTmp1, kLr);         // keep the plain return address
  as.mov(kScratch, Reg::kSp);
  as.pacia(kScratch, kCr);    // pacia(SP_b, aret_i)
  as.pacia(kLr, kCr);         // pacia(ret_b, aret_i)
  as.eor(kLr, kLr, kScratch); // aret_b
  as.mov(kScratch, Reg::kXzr);
  as.str(kLr, Reg::kX0, 0);   // buf <- aret_b
  as.str(kCr, Reg::kX0, 8);   // buf <- aret_i
  as.mov(kTmp0, Reg::kSp);
  as.str(kTmp0, Reg::kX0, 16);
  as.str(kSsp, Reg::kX0, 24);
  as.mov(kLr, kTmp1);
  as.mov_imm(Reg::kX0, 0);
  as.ret();

  as.function("__acs_longjmp");
  as.ldr(kCr, Reg::kX0, 8);      // CR <- aret_i (at setjmp time)
  as.ldr(kLr, Reg::kX0, 0);      // LR <- aret_b
  as.ldr(kScratch, Reg::kX0, 16);  // X15 <- SP_b
  as.mov(kTmp0, kScratch);
  as.pacia(kScratch, kCr);       // recreate the SP binding
  as.eor(kLr, kLr, kScratch);    // LR <- pacia(ret_b, aret_i)
  as.mov(kScratch, Reg::kXzr);
  as.autia(kLr, kCr);            // LR <- ret_b (or poisoned on tampering)
  as.mov(Reg::kSp, kTmp0);
  as.ldr(kSsp, Reg::kX0, 24);
  as.mov(Reg::kX0, Reg::kX1);
  as.ret();
}

}  // namespace

sim::Program compile_ir(const ProgramIr& ir, const CompileOptions& options) {
  if (ir.functions.empty()) {
    throw std::invalid_argument{"compile_ir: empty program"};
  }
  const auto scheme = make_scheme(options.scheme);
  const auto baseline = make_scheme(Scheme::kNone);
  Assembler as(options.code_base);

  const auto is_uninstrumented = [&options](const std::string& name) {
    return std::find(options.uninstrumented.begin(),
                     options.uninstrumented.end(),
                     name) != options.uninstrumented.end();
  };

  emit_runtime(as, ir);
  std::vector<sim::UnwindInfo> unwind;
  unwind.reserve(ir.functions.size());
  for (std::size_t i = 0; i < ir.functions.size(); ++i) {
    const bool plain = is_uninstrumented(ir.functions[i].name);
    FunctionLowerer lowerer(as, ir, ir.functions[i], i,
                            plain ? *baseline : *scheme, plain);
    unwind.push_back(lowerer.lower());
  }

  sim::Program program = as.assemble();
  program.unwind = std::move(unwind);

  // Fill loader-initialised function-pointer slots for kCallViaSlot.
  for (const auto& fn : ir.functions) {
    for (const auto& op : fn.body) {
      if (op.kind == OpKind::kCallViaSlot) {
        program.data_init.emplace_back(fn_ptr_addr(op.b),
                                       program.symbol(ir.fn(op.a).name));
      }
    }
  }
  return program;
}

}  // namespace acs::compiler
