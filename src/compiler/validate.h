// Structural validator for compiler::ProgramIr.
//
// The pipeline downstream of the IR — codegen, golden interpreter, static
// verifier — assumes a set of structural invariants that IrBuilder::build
// only partially enforces and that hand-rolled or machine-mutated IR
// (fuzz/mutate.cc) can silently break: indices in range, unique names and
// vuln-site ids (both double as assembler labels), an acyclic call graph
// (the IR has no conditionals, so a call cycle is an infinite loop),
// local accesses inside the declared buffer, and data-area slot indices
// inside their fixed-size regions (codegen.h). validate_ir checks them
// all and reports every violation; the fuzzer runs it on each mutator and
// splice output in debug builds, and `acs-fuzz --validate` sweeps a
// corpus directory explicitly.
#pragma once

#include <string>
#include <vector>

#include "compiler/ir.h"

namespace acs::compiler {

/// Check every structural invariant; returns one human-readable message
/// per violation (empty = valid). Deterministic order: functions in index
/// order, ops in body order, whole-program checks last.
[[nodiscard]] std::vector<std::string> validate_ir(const ProgramIr& ir);

/// Convenience wrapper used from assertions.
[[nodiscard]] inline bool ir_is_valid(const ProgramIr& ir) {
  return validate_ir(ir).empty();
}

}  // namespace acs::compiler
