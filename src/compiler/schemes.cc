#include "compiler/scheme.h"

#include <stdexcept>

namespace acs::compiler {

using sim::Assembler;
using sim::Reg;
using sim::AddrMode;
using sim::kCr;
using sim::kFp;
using sim::kLr;
using sim::kScratch;
using sim::kSsp;

namespace {

/// Baseline: plain AArch64 frame record for non-leaf functions.
class NoneScheme : public LoweringScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override { return Scheme::kNone; }

  void prologue(Assembler& as, const FrameCtx& ctx) const override {
    if (!ctx.instrumented) return;
    as.stp(kFp, kLr, Reg::kSp, -16, AddrMode::kPreIndex);
  }

  void epilogue(Assembler& as, const FrameCtx& ctx, bool emit_ret) const override {
    if (ctx.instrumented) as.ldp(kFp, kLr, Reg::kSp, 16, AddrMode::kPostIndex);
    if (emit_ret) as.ret();
  }
};

/// Full PACStack with PAC masking — the paper's Listing 3, verbatim.
class PacStackScheme : public LoweringScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override { return Scheme::kPacStack; }

  void prologue(Assembler& as, const FrameCtx& ctx) const override {
    if (!ctx.instrumented) return;
    as.str(kCr, Reg::kSp, -32, AddrMode::kPreIndex);  // stack <- aret_{i-1}
    as.stp(kFp, kLr, Reg::kSp, 16);                   // frame record
    as.mov(kScratch, Reg::kXzr);
    as.pacia(kLr, kCr);       // LR <- aret_i (unmasked)
    as.pacia(kScratch, kCr);  // X15 <- mask_i
    as.eor(kLr, kLr, kScratch);
    as.mov(kScratch, Reg::kXzr);  // clear the mask (Section 5.2 hygiene)
    as.mov(kCr, kLr);             // CR <- aret_i
  }

  void epilogue(Assembler& as, const FrameCtx& ctx, bool emit_ret) const override {
    if (ctx.instrumented) {
      as.mov(kLr, kCr);                               // LR <- aret_i
      as.ldr(kFp, Reg::kSp, 16);                      // skip ret in frame rec
      as.ldr(kCr, Reg::kSp, 32, AddrMode::kPostIndex);  // CR <- aret_{i-1}
      as.mov(kScratch, Reg::kXzr);
      as.pacia(kScratch, kCr);  // X15 <- mask_i
      as.eor(kLr, kLr, kScratch);
      as.mov(kScratch, Reg::kXzr);
      as.autia(kLr, kCr);  // LR <- ret_i (or poisoned)
    }
    if (emit_ret) as.ret();
  }

  [[nodiscard]] const char* setjmp_symbol() const override {
    return "__acs_setjmp";
  }
  [[nodiscard]] const char* longjmp_symbol() const override {
    return "__acs_longjmp";
  }
};

/// PACStack without masking — the paper's Listing 2.
class PacStackNoMaskScheme : public LoweringScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override {
    return Scheme::kPacStackNoMask;
  }

  void prologue(Assembler& as, const FrameCtx& ctx) const override {
    if (!ctx.instrumented) return;
    as.str(kCr, Reg::kSp, -32, AddrMode::kPreIndex);
    as.stp(kFp, kLr, Reg::kSp, 16);
    as.pacia(kLr, kCr);  // LR <- aret_i
    as.mov(kCr, kLr);    // CR <- aret_i
  }

  void epilogue(Assembler& as, const FrameCtx& ctx, bool emit_ret) const override {
    if (ctx.instrumented) {
      as.mov(kLr, kCr);
      as.ldr(kFp, Reg::kSp, 16);
      as.ldr(kCr, Reg::kSp, 32, AddrMode::kPostIndex);
      as.autia(kLr, kCr);
    }
    if (emit_ret) as.ret();
  }

  [[nodiscard]] const char* setjmp_symbol() const override {
    return "__acs_setjmp";
  }
  [[nodiscard]] const char* longjmp_symbol() const override {
    return "__acs_longjmp";
  }
};

/// -mbranch-protection analogue: sign LR with the SP value as modifier —
/// the paper's Listing 1 (paciasp / retaa).
class PacRetScheme : public LoweringScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override { return Scheme::kPacRet; }

  void prologue(Assembler& as, const FrameCtx& ctx) const override {
    if (!ctx.instrumented) return;
    as.pacia(kLr, Reg::kSp);  // paciasp
    as.stp(kFp, kLr, Reg::kSp, -16, AddrMode::kPreIndex);
  }

  void epilogue(Assembler& as, const FrameCtx& ctx, bool emit_ret) const override {
    if (!ctx.instrumented) {
      if (emit_ret) as.ret();
      return;
    }
    as.ldp(kFp, kLr, Reg::kSp, 16, AddrMode::kPostIndex);
    if (emit_ret) {
      as.retaa();
    } else {
      as.autia(kLr, Reg::kSp);  // tail call: verify without returning
    }
  }
};

/// pac-ret+leaf: like PacRetScheme but leaf functions also sign/verify LR
/// (entirely in registers — no spill), matching GCC/Clang's
/// -mbranch-protection=pac-ret+leaf.
class PacRetLeafScheme : public PacRetScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override {
    return Scheme::kPacRetLeaf;
  }

  [[nodiscard]] bool instruments(const FunctionIr& fn) const override {
    (void)fn;
    return true;
  }

  void prologue(Assembler& as, const FrameCtx& ctx) const override {
    if (!ctx.fn->is_leaf()) {
      PacRetScheme::prologue(as, ctx);
      return;
    }
    as.pacia(kLr, Reg::kSp);  // sign in-register; nothing is spilled
  }

  void epilogue(Assembler& as, const FrameCtx& ctx, bool emit_ret) const override {
    if (!ctx.fn->is_leaf()) {
      PacRetScheme::epilogue(as, ctx, emit_ret);
      return;
    }
    if (emit_ret) {
      as.retaa();
    } else {
      as.autia(kLr, Reg::kSp);
    }
  }
};

/// Clang ShadowCallStack analogue: return addresses pushed to a separate
/// stack addressed by the reserved X18.
class ShadowStackScheme : public LoweringScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override {
    return Scheme::kShadowStack;
  }

  void prologue(Assembler& as, const FrameCtx& ctx) const override {
    if (!ctx.instrumented) return;
    as.str(kLr, kSsp, 8, AddrMode::kPostIndex);  // shadow push
    as.stp(kFp, kLr, Reg::kSp, -16, AddrMode::kPreIndex);
  }

  void epilogue(Assembler& as, const FrameCtx& ctx, bool emit_ret) const override {
    if (ctx.instrumented) {
      as.ldp(kFp, kLr, Reg::kSp, 16, AddrMode::kPostIndex);
      as.ldr(kLr, kSsp, -8, AddrMode::kPreIndex);  // trusted copy wins
    }
    if (emit_ret) as.ret();
  }
};

/// -mstack-protector-strong analogue: baseline frames plus a canary for
/// functions with stack buffers (the canary load/store/check sequences are
/// emitted by the codegen, which knows the frame offsets).
class CanaryScheme : public NoneScheme {
 public:
  [[nodiscard]] Scheme id() const noexcept override { return Scheme::kCanary; }

  [[nodiscard]] bool wants_canary(const FunctionIr& fn) const override {
    return fn.has_buffer();
  }
};

}  // namespace

std::string scheme_name(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone: return "baseline";
    case Scheme::kPacStack: return "pacstack";
    case Scheme::kPacStackNoMask: return "pacstack-nomask";
    case Scheme::kPacRet: return "pac-ret";
    case Scheme::kPacRetLeaf: return "pac-ret+leaf";
    case Scheme::kShadowStack: return "shadow-stack";
    case Scheme::kCanary: return "canary";
  }
  return "unknown";
}

Scheme scheme_from_name(const std::string& name) {
  for (Scheme scheme : all_schemes()) {
    if (scheme_name(scheme) == name) return scheme;
  }
  throw std::invalid_argument{"scheme_from_name: unknown scheme " + name};
}

std::unique_ptr<LoweringScheme> make_scheme(Scheme scheme) {
  switch (scheme) {
    case Scheme::kNone: return std::make_unique<NoneScheme>();
    case Scheme::kPacStack: return std::make_unique<PacStackScheme>();
    case Scheme::kPacStackNoMask:
      return std::make_unique<PacStackNoMaskScheme>();
    case Scheme::kPacRet: return std::make_unique<PacRetScheme>();
    case Scheme::kPacRetLeaf: return std::make_unique<PacRetLeafScheme>();
    case Scheme::kShadowStack: return std::make_unique<ShadowStackScheme>();
    case Scheme::kCanary: return std::make_unique<CanaryScheme>();
  }
  throw std::invalid_argument{"make_scheme: unknown scheme"};
}

const std::vector<Scheme>& all_schemes() {
  static const std::vector<Scheme> schemes = {
      Scheme::kNone,        Scheme::kPacStack, Scheme::kPacStackNoMask,
      Scheme::kShadowStack, Scheme::kPacRet,   Scheme::kPacRetLeaf,
      Scheme::kCanary,
  };
  return schemes;
}

}  // namespace acs::compiler
