// Lowering of the function IR onto the simulated ISA.
//
// Plays the role of PACStack's modified LLVM AArch64 backend: every
// function gets the selected scheme's prologue/epilogue (the leaf-function
// heuristic of Section 7.1 applies), tail calls are lowered per Listing 8,
// setjmp/longjmp calls are redirected to the scheme's wrappers
// (Section 5.3), and a small runtime (main trampoline, signal trampoline,
// thread-exit stub, setjmp/longjmp wrappers) is linked in.
#pragma once

#include "compiler/ir.h"
#include "compiler/scheme.h"
#include "sim/isa.h"

namespace acs::compiler {

/// Data-segment layout owned by the codegen (inside the kernel's data
/// region; see kernel/machine.h for the region itself).
inline constexpr u64 kJmpBufArea = 0x0010'1000;  ///< 32-byte jmp_buf slots
inline constexpr u64 kJmpBufStride = 32;
inline constexpr u64 kFnPtrArea = 0x0010'2000;   ///< 8-byte fn-pointer slots
inline constexpr u64 kScratchArea = 0x0010'3000; ///< free for workloads

struct CompileOptions {
  Scheme scheme = Scheme::kPacStack;
  u64 code_base = 0x0001'0000;
  /// Names of functions compiled WITHOUT the scheme's instrumentation —
  /// the Section 9.2 scenario of mixing protected code with unprotected
  /// libraries. They get plain baseline frames (and, if their IR sets
  /// spills_cr, an unprotected X28 spill to the stack).
  std::vector<std::string> uninstrumented;
};

/// Compile `ir` with the given options. The returned program contains:
///  * one symbol per function (its IR name),
///  * "main" (calls the entry function, then exits),
///  * "vuln_<id>" labels for every kVulnSite op (adversary breakpoints),
///  * the runtime symbols __setjmp/__longjmp/__acs_setjmp/__acs_longjmp/
///    __thread_exit/__sigtramp.
[[nodiscard]] sim::Program compile_ir(const ProgramIr& ir,
                                      const CompileOptions& options = {});

/// Address of jmp_buf slot `slot`.
[[nodiscard]] constexpr u64 jmp_buf_addr(u64 slot) noexcept {
  return kJmpBufArea + slot * kJmpBufStride;
}

/// Address of function-pointer slot `slot`.
[[nodiscard]] constexpr u64 fn_ptr_addr(u64 slot) noexcept {
  return kFnPtrArea + slot * 8;
}

}  // namespace acs::compiler
