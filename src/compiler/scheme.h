// Return-address protection schemes — the per-function prologue/epilogue
// instrumentation the paper evaluates against each other (Section 7.1):
//
//   kNone           baseline (plain frame record)
//   kPacStack       full PACStack with PAC masking       (Listing 3)
//   kPacStackNoMask PACStack without masking             (Listing 2)
//   kPacRet         -mbranch-protection analogue         (Listing 1)
//   kPacRetLeaf     pac-ret+leaf: signs leaf functions too (GCC/Clang's
//                   -mbranch-protection=pac-ret+leaf)
//   kShadowStack    Clang ShadowCallStack analogue (X18)
//   kCanary         -mstack-protector-strong analogue
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "compiler/ir.h"
#include "sim/assembler.h"

namespace acs::compiler {

enum class Scheme : u8 {
  kNone,
  kPacStack,
  kPacStackNoMask,
  kPacRet,
  kPacRetLeaf,
  kShadowStack,
  kCanary,
};

[[nodiscard]] std::string scheme_name(Scheme scheme);
[[nodiscard]] Scheme scheme_from_name(const std::string& name);

/// Everything a scheme needs to know about the function being lowered.
struct FrameCtx {
  const FunctionIr* fn = nullptr;
  bool instrumented = false;  ///< non-leaf (spills LR)
};

/// Emits the per-scheme prologue/epilogue instruction sequences.
class LoweringScheme {
 public:
  virtual ~LoweringScheme() = default;

  [[nodiscard]] virtual Scheme id() const noexcept = 0;

  /// Whether this scheme instruments `fn` at all. Default: the Section 7.1
  /// heuristic — leaf functions never spill LR and are left alone.
  [[nodiscard]] virtual bool instruments(const FunctionIr& fn) const {
    return !fn.is_leaf();
  }

  /// Emit the function prologue (return-address save path).
  virtual void prologue(sim::Assembler& as, const FrameCtx& ctx) const = 0;

  /// Emit the epilogue. With `emit_ret == false` the return-address
  /// restore/verify sequence is emitted but the final branch is left to the
  /// caller (tail-call lowering, Listing 8).
  virtual void epilogue(sim::Assembler& as, const FrameCtx& ctx,
                        bool emit_ret) const = 0;

  /// Whether this scheme adds a stack canary to this function.
  [[nodiscard]] virtual bool wants_canary(const FunctionIr& fn) const {
    (void)fn;
    return false;
  }

  /// Runtime symbols for irregular unwinding (Section 5.3): the PACStack
  /// schemes use the authenticated wrappers, the rest the plain ones.
  [[nodiscard]] virtual const char* setjmp_symbol() const { return "__setjmp"; }
  [[nodiscard]] virtual const char* longjmp_symbol() const {
    return "__longjmp";
  }
};

[[nodiscard]] std::unique_ptr<LoweringScheme> make_scheme(Scheme scheme);

/// All schemes, in the order the paper's Figure 5 / Table 2 report them.
[[nodiscard]] const std::vector<Scheme>& all_schemes();

}  // namespace acs::compiler
