// Reference interpreter for the function IR — the golden model.
//
// Executes ProgramIr semantics directly (no compilation, no simulator, no
// schemes), producing the observable output the program *should* have.
// Differential tests run random programs through every scheme's full
// compile -> simulate pipeline and require byte-identical output against
// this interpreter: any instrumentation bug that corrupts control flow or
// drops/duplicates work shows up as a divergence.
#pragma once

#include <vector>

#include "compiler/ir.h"

namespace acs::compiler {

struct InterpResult {
  std::vector<u64> output;
  bool supported = true;   ///< false if the IR uses OS features (threads,
                           ///< fork, signals) whose interleaving the
                           ///< sequential model cannot mirror
  bool completed = true;   ///< false if the step budget ran out
};

/// Interpret `ir` starting at its entry function. `max_ops` bounds total
/// executed IR operations (guards against generator-produced blowups).
[[nodiscard]] InterpResult interpret(const ProgramIr& ir,
                                     u64 max_ops = 10'000'000);

}  // namespace acs::compiler
