#include "compiler/interp.h"

#include <unordered_map>

namespace acs::compiler {

namespace {

/// Thrown to transfer control to the matching setjmp point.
struct LongjmpSignal {
  u64 slot;
  u64 value;
};

/// Thrown to transfer control to the nearest matching catch point.
struct ThrowSignal {
  u64 tag;
  u64 value;
};

/// Thrown when the op budget is exhausted.
struct BudgetExhausted {};

/// Thrown when an unsupported OS-level op is reached.
struct Unsupported {};

struct DepthGuard {
  u64& depth;
  ~DepthGuard() { --depth; }
};

class Interpreter {
 public:
  Interpreter(const ProgramIr& ir, u64 max_ops) : ir_(ir), budget_(max_ops) {
    // Mirror the loader: every kCallViaSlot contributes a data_init entry
    // (slot -> callee address) in function/op order, applied sequentially —
    // so when two ops name the same slot, the LAST writer wins for both.
    for (const FunctionIr& fn : ir.functions) {
      for (const Op& op : fn.body) {
        if (op.kind == OpKind::kCallViaSlot) slot_target_[op.b] = op.a;
        if (op.kind == OpKind::kThreadCreate) has_threads_ = true;
        if (op.kind == OpKind::kSetjmp || op.kind == OpKind::kLongjmp) {
          has_setjmp_ = true;
        }
      }
    }
  }

  InterpResult run() {
    try {
      call(ir_.entry);
    } catch (const BudgetExhausted&) {
      result_.completed = false;
    } catch (const LongjmpSignal&) {
      // longjmp with no live matching setjmp is undefined behaviour in the
      // source model; report unsupported rather than modelling the crash.
      result_.supported = false;
    } catch (const ThrowSignal&) {
      // Unhandled exception: the machine kills the process; the sequential
      // model reports it as unsupported for differential purposes.
      result_.supported = false;
    } catch (const Unsupported&) {
      result_.supported = false;
    }
    return std::move(result_);
  }

 private:
  void charge() {
    if (budget_ == 0) throw BudgetExhausted{};
    --budget_;
  }

  void call(std::size_t index) {
    // The interpreter recurses on the host stack; slot-aliased indirect
    // calls can form cycles the IR's static call graph does not show, so
    // bound the depth like the budget (the machine bounds it with its own
    // simulated stack) instead of risking a host stack overflow.
    if (depth_ >= kMaxDepth) throw BudgetExhausted{};
    ++depth_;
    const DepthGuard guard{depth_};  // exception-safe unwind accounting
    exec_body(ir_.fn(index), 0);
  }

  void exec_body(const FunctionIr& fn, std::size_t from) {
    for (std::size_t op_index = from; op_index < fn.body.size(); ++op_index) {
      const Op& op = fn.body[op_index];
      charge();
      switch (op.kind) {
        case OpKind::kStoreLocal:
        case OpKind::kLoadLocal:
          // A wild (absolute-address) access faults the machine; the
          // sequential model has no fault semantics, so report unsupported.
          if (op.a >= compiler::kWildAccessBase) throw Unsupported{};
          break;  // in-buffer accesses have no observable effect
        case OpKind::kCompute:
        case OpKind::kVulnSite:
        case OpKind::kYield:
        case OpKind::kThreadJoin:  // sequential model: thread already ran
          break;                   // no observable effect
        case OpKind::kCall:
          for (u64 i = 0; i < (op.b == 0 ? 1 : op.b); ++i) call(op.a);
          break;
        case OpKind::kCallIndirect:
          call(op.a);
          break;
        case OpKind::kCallViaSlot:
          call(slot_target_.at(op.b));
          break;
        case OpKind::kThreadCreate:
          // Sequential model: the thread body runs to completion here;
          // comparisons against true interleavings must be order-
          // insensitive (the exact-order differential tests use programs
          // without threads). Two thread interactions fall outside the
          // model: (a) jmp_bufs are global, so concurrent setjmp/longjmp
          // clobber each other across threads; (b) a throw that escapes
          // the thread's base frame kills the process on the machine,
          // whereas the inlined body would let a catch in the *spawning*
          // function handle it here.
          if (has_setjmp_) throw Unsupported{};
          try {
            call(op.a);
          } catch (const ThrowSignal&) {
            throw Unsupported{};
          }
          break;
        case OpKind::kWriteInt:
          result_.output.push_back(op.a);
          break;
        case OpKind::kSetjmp: {
          // Matches the lowering: a longjmp to this slot re-enters at the
          // setjmp point, logs the value and branches to the epilogue —
          // which for a tail-calling function *includes the tail branch*.
          if (has_threads_) throw Unsupported{};
          const u64 marker = ++setjmp_epoch_;
          latest_setjmp_[op.a] = marker;
          active_setjmp_[op.a].push_back(marker);
          try {
            exec_body(fn, op_index + 1);
          } catch (const LongjmpSignal& signal) {
            pop_setjmp(op.a, marker);
            if (signal.slot != op.a) throw;
            result_.output.push_back(signal.value);
            run_tail(fn);
            return;
          } catch (...) {
            // Keep the liveness stack honest when a throw (or budget/
            // unsupported signal) unwinds through this frame.
            pop_setjmp(op.a, marker);
            throw;
          }
          pop_setjmp(op.a, marker);
          return;  // the remainder already executed
        }
        case OpKind::kLongjmp: {
          // The lowering keeps ONE jmp_buf per slot, overwritten by every
          // setjmp. A longjmp is well-defined only while the most recent
          // setjmp's frame is still live; anything else targets an unwound
          // frame and is undefined in the source model.
          const auto it = active_setjmp_.find(op.a);
          if (has_threads_ || it == active_setjmp_.end() ||
              it->second.empty() ||
              it->second.back() != latest_setjmp_[op.a]) {
            throw Unsupported{};
          }
          throw LongjmpSignal{op.a, op.b};
        }
        case OpKind::kCatchPoint: {
          const u64 marker = ++setjmp_epoch_;
          active_catch_[op.a].push_back(marker);
          try {
            exec_body(fn, op_index + 1);
          } catch (const ThrowSignal& signal) {
            pop_catch(op.a, marker);
            if (signal.tag != op.a) throw;
            result_.output.push_back(signal.value);
            run_tail(fn);
            return;
          } catch (...) {
            pop_catch(op.a, marker);
            throw;
          }
          pop_catch(op.a, marker);
          return;
        }
        case OpKind::kThrow:
          throw ThrowSignal{op.a, op.b};
        case OpKind::kWriteReg:
        case OpKind::kFork:
        case OpKind::kRaise:
        case OpKind::kSigaction:
          throw Unsupported{};
      }
    }
    run_tail(fn);
  }

  /// The tail call sits in the epilogue, so it runs on the normal path AND
  /// after a caught longjmp/throw re-enters via the epilogue branch.
  void run_tail(const FunctionIr& fn) {
    if (fn.tail_callee >= 0) call(static_cast<std::size_t>(fn.tail_callee));
  }

  void pop_setjmp(u64 slot, u64 marker) {
    auto& stack = active_setjmp_[slot];
    while (!stack.empty() && stack.back() >= marker) stack.pop_back();
  }

  void pop_catch(u64 tag, u64 marker) {
    auto& stack = active_catch_[tag];
    while (!stack.empty() && stack.back() >= marker) stack.pop_back();
  }

  const ProgramIr& ir_;
  u64 budget_;
  InterpResult result_;
  std::unordered_map<u64, std::vector<u64>> active_setjmp_;
  std::unordered_map<u64, u64> latest_setjmp_;  ///< per-slot buf overwrite
  std::unordered_map<u64, std::size_t> slot_target_;  ///< loader fn-ptr slots
  static constexpr u64 kMaxDepth = 512;
  u64 depth_ = 0;
  bool has_threads_ = false;
  bool has_setjmp_ = false;
  std::unordered_map<u64, std::vector<u64>> active_catch_;
  u64 setjmp_epoch_ = 0;
};

}  // namespace

InterpResult interpret(const ProgramIr& ir, u64 max_ops) {
  return Interpreter{ir, max_ops}.run();
}

}  // namespace acs::compiler
