#include "compiler/interp.h"

#include <unordered_map>

namespace acs::compiler {

namespace {

/// Thrown to transfer control to the matching setjmp point.
struct LongjmpSignal {
  u64 slot;
  u64 value;
};

/// Thrown to transfer control to the nearest matching catch point.
struct ThrowSignal {
  u64 tag;
  u64 value;
};

/// Thrown when the op budget is exhausted.
struct BudgetExhausted {};

/// Thrown when an unsupported OS-level op is reached.
struct Unsupported {};

class Interpreter {
 public:
  Interpreter(const ProgramIr& ir, u64 max_ops) : ir_(ir), budget_(max_ops) {}

  InterpResult run() {
    try {
      call(ir_.entry);
    } catch (const BudgetExhausted&) {
      result_.completed = false;
    } catch (const LongjmpSignal&) {
      // longjmp with no live matching setjmp is undefined behaviour in the
      // source model; report unsupported rather than modelling the crash.
      result_.supported = false;
    } catch (const ThrowSignal&) {
      // Unhandled exception: the machine kills the process; the sequential
      // model reports it as unsupported for differential purposes.
      result_.supported = false;
    } catch (const Unsupported&) {
      result_.supported = false;
    }
    return std::move(result_);
  }

 private:
  void charge() {
    if (budget_ == 0) throw BudgetExhausted{};
    --budget_;
  }

  void call(std::size_t index) { exec_body(ir_.fn(index), 0); }

  void exec_body(const FunctionIr& fn, std::size_t from) {
    for (std::size_t op_index = from; op_index < fn.body.size(); ++op_index) {
      const Op& op = fn.body[op_index];
      charge();
      switch (op.kind) {
        case OpKind::kCompute:
        case OpKind::kVulnSite:
        case OpKind::kStoreLocal:
        case OpKind::kLoadLocal:
        case OpKind::kYield:
        case OpKind::kThreadJoin:  // sequential model: thread already ran
          break;                   // no observable effect
        case OpKind::kCall:
          for (u64 i = 0; i < (op.b == 0 ? 1 : op.b); ++i) call(op.a);
          break;
        case OpKind::kCallIndirect:
        case OpKind::kCallViaSlot:
          call(op.a);
          break;
        case OpKind::kThreadCreate:
          // Sequential model: the thread body runs to completion here;
          // comparisons against true interleavings must be order-
          // insensitive (the exact-order differential tests use programs
          // without threads).
          call(op.a);
          break;
        case OpKind::kWriteInt:
          result_.output.push_back(op.a);
          break;
        case OpKind::kSetjmp: {
          // Matches the lowering: a longjmp to this slot re-enters at the
          // setjmp point, logs the value and returns from the function.
          const u64 marker = ++setjmp_epoch_;
          active_setjmp_[op.a].push_back(marker);
          try {
            exec_body(fn, op_index + 1);
          } catch (const LongjmpSignal& signal) {
            pop_setjmp(op.a, marker);
            if (signal.slot != op.a) throw;
            result_.output.push_back(signal.value);
            return;
          }
          pop_setjmp(op.a, marker);
          return;  // the remainder already executed
        }
        case OpKind::kLongjmp: {
          const auto it = active_setjmp_.find(op.a);
          if (it == active_setjmp_.end() || it->second.empty()) {
            throw Unsupported{};
          }
          throw LongjmpSignal{op.a, op.b};
        }
        case OpKind::kCatchPoint: {
          const u64 marker = ++setjmp_epoch_;
          active_catch_[op.a].push_back(marker);
          try {
            exec_body(fn, op_index + 1);
          } catch (const ThrowSignal& signal) {
            pop_catch(op.a, marker);
            if (signal.tag != op.a) throw;
            result_.output.push_back(signal.value);
            return;
          }
          pop_catch(op.a, marker);
          return;
        }
        case OpKind::kThrow:
          throw ThrowSignal{op.a, op.b};
        case OpKind::kWriteReg:
        case OpKind::kFork:
        case OpKind::kRaise:
        case OpKind::kSigaction:
          throw Unsupported{};
      }
    }
    if (fn.tail_callee >= 0) call(static_cast<std::size_t>(fn.tail_callee));
  }

  void pop_setjmp(u64 slot, u64 marker) {
    auto& stack = active_setjmp_[slot];
    while (!stack.empty() && stack.back() >= marker) stack.pop_back();
  }

  void pop_catch(u64 tag, u64 marker) {
    auto& stack = active_catch_[tag];
    while (!stack.empty() && stack.back() >= marker) stack.pop_back();
  }

  const ProgramIr& ir_;
  u64 budget_;
  InterpResult result_;
  std::unordered_map<u64, std::vector<u64>> active_setjmp_;
  std::unordered_map<u64, std::vector<u64>> active_catch_;
  u64 setjmp_epoch_ = 0;
};

}  // namespace

InterpResult interpret(const ProgramIr& ir, u64 max_ops) {
  return Interpreter{ir, max_ops}.run();
}

}  // namespace acs::compiler
