#include "compiler/ir.h"

#include <stdexcept>

namespace acs::compiler {

bool FunctionIr::is_leaf() const noexcept {
  if (tail_callee >= 0) return false;
  for (const auto& op : body) {
    switch (op.kind) {
      case OpKind::kCall:
      case OpKind::kCallIndirect:
      case OpKind::kCallViaSlot:
      case OpKind::kSetjmp:
      case OpKind::kLongjmp:
        return false;
      default:
        break;
    }
  }
  return true;
}

FunctionIr& IrBuilder::current() {
  if (ir_.functions.empty()) {
    throw std::logic_error{"IrBuilder: no function started"};
  }
  return ir_.functions.back();
}

std::size_t IrBuilder::begin_function(std::string name, u64 local_bytes) {
  FunctionIr fn;
  fn.name = std::move(name);
  fn.local_bytes = local_bytes;
  ir_.functions.push_back(std::move(fn));
  return ir_.functions.size() - 1;
}

void IrBuilder::compute(u64 cycles) {
  current().body.push_back({OpKind::kCompute, cycles, 0});
}

void IrBuilder::call(std::size_t callee, u64 times) {
  current().body.push_back({OpKind::kCall, callee, times});
}

void IrBuilder::call_indirect(std::size_t callee) {
  current().body.push_back({OpKind::kCallIndirect, callee, 0});
}

void IrBuilder::call_via_slot(std::size_t callee, u64 slot) {
  current().body.push_back({OpKind::kCallViaSlot, callee, slot});
}

void IrBuilder::vuln_site(u64 id) {
  current().body.push_back({OpKind::kVulnSite, id, 0});
}

void IrBuilder::write_int(u64 value) {
  current().body.push_back({OpKind::kWriteInt, value, 0});
}

void IrBuilder::setjmp_point(u64 slot) {
  current().body.push_back({OpKind::kSetjmp, slot, 0});
}

void IrBuilder::longjmp_to(u64 slot, u64 value) {
  current().body.push_back({OpKind::kLongjmp, slot, value});
}

void IrBuilder::thread_create(std::size_t callee, u64 arg) {
  current().body.push_back({OpKind::kThreadCreate, callee, arg});
}

void IrBuilder::thread_join(u64 tid) {
  current().body.push_back({OpKind::kThreadJoin, tid, 0});
}

void IrBuilder::catch_point(u64 tag) {
  current().body.push_back({OpKind::kCatchPoint, tag, 0});
}

void IrBuilder::throw_exception(u64 tag, u64 value) {
  current().body.push_back({OpKind::kThrow, tag, value});
}

void IrBuilder::yield() { current().body.push_back({OpKind::kYield, 0, 0}); }

void IrBuilder::store_local(u64 offset, u64 value) {
  current().body.push_back({OpKind::kStoreLocal, offset, value});
}

void IrBuilder::load_local(u64 offset) {
  current().body.push_back({OpKind::kLoadLocal, offset, 0});
}

void IrBuilder::sigaction(u64 signum, std::size_t handler) {
  current().body.push_back({OpKind::kSigaction, signum, handler});
}

void IrBuilder::mark_spills_cr() { current().spills_cr = true; }

void IrBuilder::raise_signal(u64 signum) {
  current().body.push_back({OpKind::kRaise, signum, 0});
}

void IrBuilder::fork() { current().body.push_back({OpKind::kFork, 0, 0}); }

void IrBuilder::write_reg() {
  current().body.push_back({OpKind::kWriteReg, 0, 0});
}

void IrBuilder::tail_call(std::size_t callee) {
  current().tail_callee = static_cast<i64>(callee);
}

ProgramIr IrBuilder::build(std::size_t entry) {
  if (entry >= ir_.functions.size()) {
    throw std::out_of_range{"IrBuilder: entry index out of range"};
  }
  for (const auto& fn : ir_.functions) {
    for (const auto& op : fn.body) {
      if ((op.kind == OpKind::kCall || op.kind == OpKind::kCallIndirect ||
           op.kind == OpKind::kCallViaSlot ||
           op.kind == OpKind::kThreadCreate) &&
          op.a >= ir_.functions.size()) {
        throw std::out_of_range{"IrBuilder: callee index out of range in " +
                                fn.name};
      }
      if (op.kind == OpKind::kSigaction && op.b >= ir_.functions.size()) {
        throw std::out_of_range{"IrBuilder: handler index out of range in " +
                                fn.name};
      }
    }
    if (fn.tail_callee >= 0 &&
        static_cast<std::size_t>(fn.tail_callee) >= ir_.functions.size()) {
      throw std::out_of_range{"IrBuilder: tail callee out of range in " +
                              fn.name};
    }
  }
  ir_.entry = entry;
  return std::move(ir_);
}

}  // namespace acs::compiler
