// Function-level intermediate representation.
//
// The synthetic programs the evaluation runs (SPEC-like workloads, the
// NGINX simulation, attack victims, ConFIRM-style compatibility tests) are
// written in this IR; the codegen lowers it onto the simulated ISA with a
// pluggable protection scheme — the role LLVM's AArch64 backend plays for
// the real PACStack.
#pragma once

#include <string>
#include <vector>

#include "common/types.h"

namespace acs::compiler {

enum class OpKind : u8 {
  kCompute,       ///< a = cycles of straight-line work
  kCall,          ///< a = callee index, b = repeat count (>= 1)
  kCallIndirect,  ///< a = callee index; address materialised in a register
  kCallViaSlot,   ///< a = callee index, b = data slot holding the fn pointer
  kVulnSite,      ///< a = site id; a labelled point where the adversary may
                  ///< exercise its memory-write primitive (breakpoint hook)
  kWriteInt,      ///< a = value appended to the process output
  kWriteReg,      ///< append the current X0 to the process output
  kSetjmp,        ///< a = jmp_buf slot; on a non-zero (longjmp) return the
                  ///< function logs the value and returns immediately
  kLongjmp,       ///< a = jmp_buf slot, b = value passed to longjmp
  kThreadCreate,  ///< a = callee index, b = argument
  kYield,         ///< relinquish the time slice
  kStoreLocal,    ///< a = byte offset into the local buffer, b = value;
                  ///< a >= kWildAccessBase = *absolute* wild address instead
  kLoadLocal,     ///< a = byte offset into the local buffer (result dropped);
                  ///< a >= kWildAccessBase = *absolute* wild address instead
  kSigaction,     ///< a = signal number, b = handler function index
  kRaise,         ///< a = signal number, sent to the calling process itself
  kFork,          ///< fork(); the pid result lands in X0 (see kWriteReg)
  kThreadJoin,    ///< a = tid to wait for (blocks until that thread exits)
  kCatchPoint,    ///< a = exception tag; a throw of this tag lands here,
                  ///< logs the thrown value and returns from the function
  kThrow,         ///< a = exception tag, b = value (never returns)
};

struct Op {
  OpKind kind;
  u64 a = 0;
  u64 b = 0;
};

/// kStoreLocal/kLoadLocal offsets at or above this value are lowered as
/// *absolute* addresses ("wild accesses") instead of SP-relative slots. No
/// region is ever mapped that high, so a wild access always faults — the
/// fuzzer uses addresses in the top 4 KiB of the 64-bit space to exercise
/// the simulator's address-wraparound handling (an access whose end,
/// `addr + len`, overflows past 2^64 must be a translation fault, not a
/// hit in the region that owns address 0). The golden interpreter reports
/// programs containing one as unsupported.
inline constexpr u64 kWildAccessBase = u64{1} << 63;

[[nodiscard]] constexpr bool is_wild_access(const Op& op) noexcept {
  return (op.kind == OpKind::kStoreLocal || op.kind == OpKind::kLoadLocal) &&
         op.a >= kWildAccessBase;
}

struct FunctionIr {
  std::string name;
  std::vector<Op> body;
  u64 local_bytes = 0;  ///< stack buffer size (0 = no buffer)
  i64 tail_callee = -1; ///< index of a tail-called function, -1 = none
  /// Models *uninstrumented* code that uses X28 internally and therefore
  /// spills the PACStack chain register to its (attacker-writable) stack
  /// frame — the Section 9.2 interoperability hazard. Only takes effect
  /// when the function is compiled without instrumentation.
  bool spills_cr = false;

  /// A leaf function performs no calls, so it never spills LR; both
  /// PACStack and -mbranch-protection leave such functions uninstrumented
  /// (the Section 7.1 heuristic).
  [[nodiscard]] bool is_leaf() const noexcept;
  [[nodiscard]] bool has_buffer() const noexcept { return local_bytes > 0; }
};

struct ProgramIr {
  std::vector<FunctionIr> functions;
  std::size_t entry = 0;  ///< index of the function main() calls

  [[nodiscard]] const FunctionIr& fn(std::size_t i) const {
    return functions.at(i);
  }
};

/// Convenience builder for tests and workload generators.
class IrBuilder {
 public:
  /// Start a new function; returns its index.
  std::size_t begin_function(std::string name, u64 local_bytes = 0);
  void compute(u64 cycles);
  void call(std::size_t callee, u64 times = 1);
  void call_indirect(std::size_t callee);
  void call_via_slot(std::size_t callee, u64 slot);
  void vuln_site(u64 id);
  void write_int(u64 value);
  void setjmp_point(u64 slot);
  void longjmp_to(u64 slot, u64 value);
  void thread_create(std::size_t callee, u64 arg);
  void thread_join(u64 tid);
  void catch_point(u64 tag);
  void throw_exception(u64 tag, u64 value);
  void yield();
  void store_local(u64 offset, u64 value);
  void load_local(u64 offset);
  void sigaction(u64 signum, std::size_t handler);
  void mark_spills_cr();
  void raise_signal(u64 signum);
  void fork();
  void write_reg();
  void tail_call(std::size_t callee);

  /// Finish, designating `entry` as the program entry point.
  [[nodiscard]] ProgramIr build(std::size_t entry);

 private:
  [[nodiscard]] FunctionIr& current();
  ProgramIr ir_;
};

}  // namespace acs::compiler
