#include "compiler/validate.h"

#include <map>
#include <set>

#include "compiler/codegen.h"

namespace acs::compiler {

namespace {

/// Slot capacities of the fixed data areas (codegen.h): each area is one
/// 4 KiB page, so the stride bounds the addressable slot count.
constexpr u64 kJmpBufSlots = 0x1000 / kJmpBufStride;
constexpr u64 kFnPtrSlots = 0x1000 / 8;

/// DFS over the static call graph (call/indirect/via-slot/thread-create/
/// sigaction-handler/tail edges); true iff a cycle is reachable.
bool has_call_cycle(const ProgramIr& ir) {
  const std::size_t n = ir.functions.size();
  // 0 = unvisited, 1 = on the current DFS path, 2 = done.
  std::vector<u8> state(n, 0);
  std::vector<std::size_t> stack;
  for (std::size_t root = 0; root < n; ++root) {
    if (state[root] != 0) continue;
    stack.push_back(root);
    while (!stack.empty()) {
      const std::size_t at = stack.back();
      if (state[at] == 0) {
        state[at] = 1;
        const auto push_edge = [&](u64 callee) {
          if (callee >= n) return false;  // reported separately
          if (state[callee] == 1) return true;
          if (state[callee] == 0) stack.push_back(callee);
          return false;
        };
        const FunctionIr& fn = ir.functions[at];
        for (const Op& op : fn.body) {
          switch (op.kind) {
            case OpKind::kCall:
            case OpKind::kCallIndirect:
            case OpKind::kCallViaSlot:
            case OpKind::kThreadCreate:
              if (push_edge(op.a)) return true;
              break;
            case OpKind::kSigaction:
              if (push_edge(op.b)) return true;
              break;
            default:
              break;
          }
        }
        if (fn.tail_callee >= 0 &&
            push_edge(static_cast<u64>(fn.tail_callee))) {
          return true;
        }
      } else {
        state[at] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

}  // namespace

std::vector<std::string> validate_ir(const ProgramIr& ir) {
  std::vector<std::string> errors;
  const auto err = [&](std::string message) {
    errors.push_back(std::move(message));
  };
  const std::size_t n = ir.functions.size();

  if (n == 0) {
    err("program has no functions");
    return errors;
  }
  if (ir.entry >= n) {
    err("entry index " + std::to_string(ir.entry) + " out of range");
  }

  std::set<std::string> names;
  std::map<u64, std::string> vuln_sites;  // id -> first owner
  for (std::size_t i = 0; i < n; ++i) {
    const FunctionIr& fn = ir.functions[i];
    const std::string where = "fn " + std::to_string(i) + " (" + fn.name +
                              ")";
    if (fn.name.empty()) err(where + ": empty name");
    if (!fn.name.empty() && !names.insert(fn.name).second) {
      err(where + ": duplicate name (names double as assembler labels)");
    }
    if (fn.tail_callee >= 0 &&
        static_cast<std::size_t>(fn.tail_callee) >= n) {
      err(where + ": tail callee out of range");
    }
    std::set<u64> catch_tags;
    for (std::size_t j = 0; j < fn.body.size(); ++j) {
      const Op& op = fn.body[j];
      const std::string at = where + " op " + std::to_string(j);
      switch (op.kind) {
        case OpKind::kCall:
          if (op.b < 1) err(at + ": call repeat count must be >= 1");
          [[fallthrough]];
        case OpKind::kCallIndirect:
        case OpKind::kThreadCreate:
          if (op.a >= n) err(at + ": callee index out of range");
          break;
        case OpKind::kCallViaSlot:
          if (op.a >= n) err(at + ": callee index out of range");
          if (op.b >= kFnPtrSlots) {
            err(at + ": fn-pointer slot outside the data area");
          }
          break;
        case OpKind::kSigaction:
          if (op.b >= n) err(at + ": handler index out of range");
          break;
        case OpKind::kSetjmp:
        case OpKind::kLongjmp:
          if (op.a >= kJmpBufSlots) {
            err(at + ": jmp_buf slot outside the data area");
          }
          break;
        case OpKind::kVulnSite: {
          const auto [it, fresh] = vuln_sites.emplace(op.a, fn.name);
          if (!fresh) {
            err(at + ": vuln-site id " + std::to_string(op.a) +
                " already used in " + it->second +
                " (ids double as assembler labels)");
          }
          break;
        }
        case OpKind::kStoreLocal:
        case OpKind::kLoadLocal:
          if (op.a < kWildAccessBase && op.a + 8 > fn.local_bytes) {
            err(at + ": local access beyond the declared buffer");
          }
          break;
        case OpKind::kCatchPoint:
          if (!catch_tags.insert(op.a).second) {
            err(at + ": duplicate catch tag " + std::to_string(op.a) +
                " in one function");
          }
          break;
        default:
          break;
      }
    }
  }

  if (has_call_cycle(ir)) {
    err("call graph has a cycle (no conditionals: it cannot terminate)");
  }
  return errors;
}

}  // namespace acs::compiler
