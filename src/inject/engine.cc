#include "inject/engine.h"

#include <algorithm>

namespace acs::inject {

unsigned TaskInjector::guess_window() const noexcept {
  return engine_->guess_window();
}

void TaskInjector::record(FaultKind kind, bool guess_success) noexcept {
  engine_->record(kind, guess_success);
}

Engine::Engine(Config config)
    : cpu_cursor_(this), guess_window_(config.guess_window) {
  for (const PlannedFault& fault : config.plan) {
    (is_cpu_level(fault.kind) ? cpu_cursor_.faults_ : kernel_faults_)
        .push_back(fault);
  }
  const auto by_time = [](const PlannedFault& a, const PlannedFault& b) {
    return a.at_instr < b.at_instr;
  };
  std::stable_sort(cpu_cursor_.faults_.begin(), cpu_cursor_.faults_.end(),
                   by_time);
  std::stable_sort(kernel_faults_.begin(), kernel_faults_.end(), by_time);
}

TaskInjector* Engine::attach() noexcept {
  if (attached_) return nullptr;
  attached_ = true;
  return &cpu_cursor_;
}

void Engine::record(FaultKind kind, bool guess_success) noexcept {
  ++summary_.injected[static_cast<std::size_t>(kind)];
  if (kind == FaultKind::kChainCorrupt) {
    ++summary_.guess_attempts;
    if (guess_success) ++summary_.guess_successes;
  }
}

}  // namespace acs::inject
