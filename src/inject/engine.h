// The fault-injection engine: cursors over a plan plus outcome counters.
//
// One Engine serves one simulated machine (machines are sequential; no
// locking). Attachment mirrors obs::Recorder: kernel::MachineOptions holds
// an `inject::Engine*` that defaults to nullptr, the machine hands the
// engine's CPU-level cursor to the first created hart via
// sim::Cpu::set_injector, and every hook site in the hot path is a single
// never-taken null check when no engine is attached.
//
// The engine also keeps the campaign summary: how many faults of each
// kind were actually delivered, and — for kChainCorrupt, the Section 6.1
// guessing adversary — how many guesses were attempted and how many hit
// the live PAC field. Campaigns merge summaries in trial order.
#pragma once

#include <array>
#include <vector>

#include "common/types.h"
#include "inject/plan.h"

namespace acs::inject {

/// Delivered-fault counters for one machine (or one merged campaign).
struct Summary {
  std::array<u64, kNumFaultKinds> injected{};  ///< indexed by FaultKind
  u64 guess_attempts = 0;   ///< kChainCorrupt faults delivered
  u64 guess_successes = 0;  ///< guesses that matched the live PAC field

  void merge(const Summary& other) noexcept {
    for (std::size_t i = 0; i < kNumFaultKinds; ++i) {
      injected[i] += other.injected[i];
    }
    guess_attempts += other.guess_attempts;
    guess_successes += other.guess_successes;
  }

  [[nodiscard]] u64 total_injected() const noexcept {
    u64 total = 0;
    for (const u64 n : injected) total += n;
    return total;
  }
};

class Engine;

/// CPU-level cursor: owned by the Engine, installed on one hart. The hart
/// polls `due()` once per step (two loads and a compare when armed) and
/// applies the fault itself — the CPU has the architectural knowledge, the
/// cursor only sequences the plan and records outcomes.
class TaskInjector {
 public:
  /// Pc-triggered faults (at_pc != 0) count executions of their PC here, so
  /// due() must be polled exactly once per executed step (the Cpu::step
  /// contract; run_fast is disabled while an injector is attached).
  [[nodiscard]] bool due(u64 instr, u64 call_depth, u64 pc) noexcept {
    if (next_ >= faults_.size()) return false;
    const PlannedFault& fault = faults_[next_];
    if (fault.at_pc != 0) {
      if (pc != fault.at_pc) return false;
      return ++pc_hits_ >= fault.occurrence;
    }
    if (instr < fault.at_instr) return false;
    return call_depth >= fault.min_depth ||
           instr >= fault.at_instr + kDepthGrace;
  }

  /// The due fault, without consuming it — lets the hart defer kinds that
  /// need a particular architectural moment (kChainCorrupt waits for a
  /// call instruction, where the chain register is guaranteed live).
  [[nodiscard]] const PlannedFault& peek() const noexcept {
    return faults_[next_];
  }

  /// The fault to apply now; advances the cursor (and resets the pc-hit
  /// counter for the next pc-triggered fault).
  [[nodiscard]] const PlannedFault& take() noexcept {
    pc_hits_ = 0;
    return faults_[next_++];
  }

  /// PAC-field guess width (bits) for kChainCorrupt faults.
  [[nodiscard]] unsigned guess_window() const noexcept;

  /// Record a delivered fault (guess_success only meaningful for
  /// kChainCorrupt).
  void record(FaultKind kind, bool guess_success = false) noexcept;

 private:
  friend class Engine;
  explicit TaskInjector(Engine* engine) : engine_(engine) {}

  Engine* engine_;
  std::vector<PlannedFault> faults_;
  std::size_t next_ = 0;
  u64 pc_hits_ = 0;  ///< executions of the current fault's at_pc so far
};

class Engine {
 public:
  struct Config {
    std::vector<PlannedFault> plan;  ///< any order; split and sorted here
    /// Width (bits) of the CR PAC-field window a kChainCorrupt guess
    /// targets. Small windows model the paper's partial-pointer reuse
    /// setting where the effective guess space is b bits (Section 6.1).
    unsigned guess_window = 4;
  };

  explicit Engine(Config config);

  /// The CPU-level cursor for the machine's first hart; the machine calls
  /// this once at task creation. Subsequent calls return nullptr (worker
  /// processes are single-hart; one victim hart keeps plans exact).
  [[nodiscard]] TaskInjector* attach() noexcept;

  /// Kernel-level cursor, polled per scheduling slice against the
  /// process's instruction clock.
  [[nodiscard]] bool kernel_due(u64 instr) const noexcept {
    return kernel_next_ < kernel_faults_.size() &&
           instr >= kernel_faults_[kernel_next_].at_instr;
  }
  [[nodiscard]] const PlannedFault& kernel_take() noexcept {
    return kernel_faults_[kernel_next_++];
  }

  void record(FaultKind kind, bool guess_success = false) noexcept;

  [[nodiscard]] unsigned guess_window() const noexcept {
    return guess_window_;
  }
  [[nodiscard]] const Summary& summary() const noexcept { return summary_; }

 private:
  TaskInjector cpu_cursor_;
  std::vector<PlannedFault> kernel_faults_;
  std::size_t kernel_next_ = 0;
  unsigned guess_window_;
  bool attached_ = false;
  Summary summary_;
};

}  // namespace acs::inject
