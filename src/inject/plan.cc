#include "inject/plan.h"

#include <iterator>

namespace acs::inject {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kRetSlotBitflip: return "ret-slot-bitflip";
    case FaultKind::kChainCorrupt: return "chain-corrupt";
    case FaultKind::kInstrSkip: return "instr-skip";
    case FaultKind::kKeyPerturb: return "key-perturb";
    case FaultKind::kSigFrameTrash: return "sig-frame-trash";
    case FaultKind::kBudgetExhaust: return "budget-exhaust";
    case FaultKind::kStoreWord: return "store-word";
  }
  return "unknown";
}

std::vector<PlannedFault> make_plan(const PlanConfig& config) {
  std::vector<PlannedFault> plan;
  if (config.mean_interval == 0 || config.horizon == 0) return plan;

  // The random draw set deliberately excludes kStoreWord (which needs a
  // concrete target) and must stay exactly these six kinds in this order:
  // seeded campaigns are pinned bit-for-bit across the test suite.
  static constexpr FaultKind kAllKinds[] = {
      FaultKind::kRetSlotBitflip, FaultKind::kChainCorrupt,
      FaultKind::kInstrSkip,      FaultKind::kKeyPerturb,
      FaultKind::kSigFrameTrash,  FaultKind::kBudgetExhaust,
  };
  static_assert(std::size(kAllKinds) == kNumPlannableKinds);

  Rng rng(config.seed);
  u64 t = 0;
  for (;;) {
    t += 1 + rng.next_below(2 * config.mean_interval);
    if (t >= config.horizon) break;
    PlannedFault fault;
    fault.at_instr = t;
    fault.kind = config.kinds.empty()
                     ? kAllKinds[rng.next_below(kNumPlannableKinds)]
                     : config.kinds[rng.next_below(config.kinds.size())];
    fault.min_depth =
        config.max_depth == 0 ? 0 : rng.next_below(config.max_depth);
    fault.payload = rng.next();
    plan.push_back(fault);
  }
  return plan;
}

}  // namespace acs::inject
