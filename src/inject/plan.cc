#include "inject/plan.h"

#include <algorithm>
#include <iterator>

namespace acs::inject {

const char* fault_kind_name(FaultKind kind) noexcept {
  switch (kind) {
    case FaultKind::kRetSlotBitflip: return "ret-slot-bitflip";
    case FaultKind::kChainCorrupt: return "chain-corrupt";
    case FaultKind::kInstrSkip: return "instr-skip";
    case FaultKind::kKeyPerturb: return "key-perturb";
    case FaultKind::kSigFrameTrash: return "sig-frame-trash";
    case FaultKind::kBudgetExhaust: return "budget-exhaust";
    case FaultKind::kStoreWord: return "store-word";
  }
  return "unknown";
}

namespace {

/// One renewal process: faults with inter-arrival uniform in
/// [1, 2*mean_interval], starting at `begin`, strictly before `end`.
void draw_renewal(const PlanConfig& config, Rng& rng, u64 begin, u64 end,
                  u64 mean_interval, std::vector<PlannedFault>& plan) {
  // The random draw set deliberately excludes kStoreWord (which needs a
  // concrete target) and must stay exactly these six kinds in this order:
  // seeded campaigns are pinned bit-for-bit across the test suite.
  static constexpr FaultKind kAllKinds[] = {
      FaultKind::kRetSlotBitflip, FaultKind::kChainCorrupt,
      FaultKind::kInstrSkip,      FaultKind::kKeyPerturb,
      FaultKind::kSigFrameTrash,  FaultKind::kBudgetExhaust,
  };
  static_assert(std::size(kAllKinds) == kNumPlannableKinds);

  u64 t = begin;
  for (;;) {
    t += 1 + rng.next_below(2 * mean_interval);
    if (t >= end) break;
    PlannedFault fault;
    fault.at_instr = t;
    fault.kind = config.kinds.empty()
                     ? kAllKinds[rng.next_below(kNumPlannableKinds)]
                     : config.kinds[rng.next_below(config.kinds.size())];
    fault.min_depth =
        config.max_depth == 0 ? 0 : rng.next_below(config.max_depth);
    fault.payload = rng.next();
    plan.push_back(fault);
  }
}

}  // namespace

std::vector<PlannedFault> make_plan(const PlanConfig& config) {
  std::vector<PlannedFault> plan;
  if (config.horizon == 0) return plan;

  Rng rng(config.seed);
  if (config.mean_interval != 0) {
    draw_renewal(config, rng, 0, config.horizon, config.mean_interval, plan);
  }

  // Correlated burst: a second renewal process inside the window, drawn
  // from the same stream *after* the baseline so a disabled burst leaves
  // the baseline plan bit-identical to older releases.
  if (config.burst_len != 0 && config.burst_mean_interval != 0 &&
      config.burst_start < config.horizon) {
    // Clamp without overflow: horizon - burst_start cannot underflow here
    // (burst_start < horizon), while burst_start + burst_len could wrap.
    const u64 burst_end =
        config.horizon - config.burst_start > config.burst_len
            ? config.burst_start + config.burst_len
            : config.horizon;
    const std::size_t baseline_count = plan.size();
    draw_renewal(config, rng, config.burst_start, burst_end,
                 config.burst_mean_interval, plan);
    std::inplace_merge(plan.begin(),
                       plan.begin() + static_cast<std::ptrdiff_t>(
                                          baseline_count),
                       plan.end(),
                       [](const PlannedFault& a, const PlannedFault& b) {
                         return a.at_instr < b.at_instr;
                       });
  }
  return plan;
}

}  // namespace acs::inject
