// Deterministic fault-injection plans (docs/fault-injection.md).
//
// A plan is a sorted list of faults to deliver at exact points of a
// simulated execution: "at instruction N, once the call depth reaches D,
// do X". Plans are pure functions of a seed, so a campaign that derives
// its plan seeds through exec::trial_seed is bitwise identical for any
// host thread count — a fault campaign replays exactly, crash for crash.
//
// The kinds split into two delivery levels:
//   * CPU-level kinds fire inside sim::Cpu::step() at a precise retired-
//     instruction count (and optionally a minimum call depth), mutating
//     architectural state just before the next instruction executes;
//   * kernel-level kinds fire from kernel::Machine's scheduler loop at a
//     process-instruction threshold, using kernel powers (key material,
//     signal frames, the kill path) the CPU does not have.
//
// `inject` depends only on acs_common; the sim and kernel layers interpret
// the plan themselves, mirroring how src/obs stays dependency-free.
#pragma once

#include <vector>

#include "common/rng.h"
#include "common/types.h"

namespace acs::inject {

enum class FaultKind : u8 {
  // CPU-level (applied by sim::Cpu at an exact instruction count).
  kRetSlotBitflip,  ///< flip one bit in a stack slot near SP (payload picks
                    ///< slot and bit) — a rowhammer/soft-error stand-in
  kChainCorrupt,    ///< write a PAC-field guess into CR (the Section 6.1
                    ///< guessing adversary; payload is the guess value)
  kInstrSkip,       ///< skip the next instruction (fault-skip attack model)
  // Kernel-level (applied by kernel::Machine between scheduling slices).
  kKeyPerturb,      ///< regenerate the process's PA keys mid-run (payload
                    ///< seeds the replacement key set)
  kSigFrameTrash,   ///< overwrite the saved-PC word of the newest signal
                    ///< frame (sigreturn-oriented corruption)
  kBudgetExhaust,   ///< exhaust the instruction budget: the kernel kills the
                    ///< process with sim::FaultKind::kInstrBudget
  // CPU-level, precision kind (never drawn by make_plan — see below).
  kStoreWord,       ///< write `payload` to `addr` (or SP + `addr` when
                    ///< `sp_rel`): the Section 3 adversary's one-word write,
                    ///< delivered at an exact program point for witness
                    ///< replay (docs/verifier.md "Witnesses")
};

inline constexpr std::size_t kNumFaultKinds = 7;

/// Kinds make_plan draws from when PlanConfig::kinds is empty. kStoreWord
/// is excluded: it needs a concrete target address, so a random draw would
/// be meaningless — and keeping the draw set fixed keeps every seeded fault
/// campaign bit-identical across releases.
inline constexpr std::size_t kNumPlannableKinds = 6;

[[nodiscard]] const char* fault_kind_name(FaultKind kind) noexcept;

/// True for kinds sim::Cpu applies in step(); false for the kernel kinds.
[[nodiscard]] constexpr bool is_cpu_level(FaultKind kind) noexcept {
  return kind == FaultKind::kRetSlotBitflip ||
         kind == FaultKind::kChainCorrupt ||
         kind == FaultKind::kInstrSkip || kind == FaultKind::kStoreWord;
}

/// One planned fault. `at_instr` is the delivering clock's instruction
/// count (per-hart for CPU-level kinds, per-process for kernel-level). A
/// non-zero `min_depth` delays a CPU-level fault until the hart's call
/// depth reaches it — so e.g. a chain corruption lands while return
/// addresses actually sit on the stack; kDepthGrace bounds the wait.
///
/// A non-zero `at_pc` switches a CPU-level fault to *pc-triggered*
/// delivery: it fires when the hart is about to execute `at_pc` for the
/// `occurrence`-th time (1-based), ignoring at_instr/min_depth. This is the
/// precision mode witness replay uses to land a fault at one architectural
/// moment of one specific activation.
struct PlannedFault {
  u64 at_instr = 0;
  u64 min_depth = 0;
  FaultKind kind = FaultKind::kInstrSkip;
  u64 payload = 0;
  u64 at_pc = 0;       ///< 0 = count-triggered; else fire at this PC
  u64 occurrence = 1;  ///< which execution of at_pc fires (1-based)
  u64 addr = 0;        ///< kStoreWord target (absolute, or SP-offset)
  bool sp_rel = false; ///< kStoreWord: addr is an offset from the live SP
};

/// If `min_depth` was not reached within this many instructions past
/// `at_instr`, the fault fires anyway (the program may never call that
/// deep). Deterministic: depends only on the instruction clock.
inline constexpr u64 kDepthGrace = 4096;

struct PlanConfig {
  u64 seed = 1;
  u64 horizon = 1'000'000;   ///< instructions covered by the plan
  u64 mean_interval = 0;     ///< mean instructions between faults (0 = none)
  u64 max_depth = 4;         ///< min_depth is drawn from [0, max_depth)
  /// Kinds to draw from (uniformly); empty = all six kinds.
  std::vector<FaultKind> kinds;

  // --- correlated burst (docs/fault-injection.md "Correlated bursts") ---
  // A crash storm: on top of the baseline renewal process, a second,
  // denser renewal process runs inside [burst_start, burst_start +
  // burst_len) — the model for a whole pool melting down for a window
  // (rowhammer campaign, bad deploy, thermal event) rather than
  // independent background faults. burst_len == 0 or
  // burst_mean_interval == 0 disables the burst, and a disabled burst
  // leaves the baseline plan bit-identical to older releases.
  u64 burst_start = 0;          ///< first instruction of the burst window
  u64 burst_len = 0;            ///< window length in instructions (0 = off)
  u64 burst_mean_interval = 0;  ///< mean instructions between burst faults
};

/// Build a plan: fault times are a renewal process with inter-arrival
/// uniform in [1, 2*mean_interval], kinds/depths/payloads drawn from the
/// seeded RNG; a configured burst adds a second renewal process inside
/// its window, drawn after the baseline from the same seeded stream. The
/// merged plan is sorted by `at_instr`; pure function of the config.
[[nodiscard]] std::vector<PlannedFault> make_plan(const PlanConfig& config);

}  // namespace acs::inject
