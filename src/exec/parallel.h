// Deterministic parallel Monte-Carlo trial executor.
//
// Every reproduced table in this repository is a campaign over thousands of
// independent trials (attack guesses, collision harvests, simulated NGINX
// workers). This runner distributes those trials over a std::thread pool
// while keeping the results **bitwise identical regardless of thread
// count** (1 thread ≡ N threads):
//
//   * each trial draws from its own RNG, seeded as
//     trial_seed(base_seed, index) — a SplitMix64 derivation, so no trial
//     ever observes another trial's stream position;
//   * trials are claimed in fixed-size chunks through an atomic counter
//     (dynamic load balancing), but partial results are stored per *chunk*,
//     not per thread, and folded after the pool joins with a fixed-shape
//     binary tree (stride-doubling pairwise merges) — the floating-point
//     reduction tree is therefore a pure function of (n_trials,
//     kTrialChunk), never of scheduling or thread count. The tree both
//     pins the rounding order and keeps the reduction depth logarithmic;
//     wide rounds are themselves parallelised over the pool.
//
// Exceptions thrown by a trial cancel the remaining chunks and are
// rethrown (first one wins) on the calling thread.
#pragma once

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "common/types.h"

namespace acs::exec {

/// Per-trial RNG seed: a SplitMix64 derivation of (base_seed, trial_index)
/// with the golden-ratio stride, matching the seeding discipline of
/// Rng::reseed. Distinct indices under the same base seed yield
/// decorrelated streams; the same (base, index) pair always yields the
/// same seed, independent of how trials are scheduled.
[[nodiscard]] constexpr u64 trial_seed(u64 base_seed, u64 trial_index) noexcept {
  u64 state = base_seed ^ (0x9e3779b97f4a7c15ULL * (trial_index + 1));
  return splitmix64(state);
}

/// Number of worker threads a request resolves to: 0 means "all hardware
/// threads"; anything else is used as-is (clamped to >= 1).
[[nodiscard]] unsigned resolve_threads(unsigned requested) noexcept;

/// Trials per atomically claimed chunk. Part of the determinism contract:
/// changing it changes the floating-point merge tree (not the integer
/// statistics), so it is fixed rather than adaptive.
inline constexpr u64 kTrialChunk = 64;

namespace detail {
/// Run fn(chunk_index) for every chunk in [0, n_chunks) on `threads`
/// workers claiming chunks through an atomic counter. Rethrows the first
/// trial exception after all workers have stopped.
void for_each_chunk(u64 n_chunks, unsigned threads,
                    const std::function<void(u64)>& fn);

/// A merge round narrower than this runs inline: spinning up the pool
/// costs more than the merges it would distribute.
inline constexpr u64 kParallelMergePairs = 64;

/// Fold `partials` into partials[0] with a fixed-shape binary tree:
/// stride-doubling pairwise merges, partials[i].merge(partials[i + s]) for
/// i = 0, 2s, 4s, ... The shape is a pure function of partials.size() —
/// never of `threads` — so floating-point reductions are bitwise identical
/// for every thread count; `threads` only decides whether a wide round's
/// (independent) pair merges run on the pool.
template <typename Acc>
void tree_merge(std::vector<Acc>& partials, unsigned threads) {
  const u64 n = partials.size();
  for (u64 stride = 1; stride < n; stride *= 2) {
    const u64 pairs = (n - stride + 2 * stride - 1) / (2 * stride);
    const auto merge_pair = [&](u64 pair) {
      const u64 i = pair * 2 * stride;
      partials[i].merge(partials[i + stride]);
    };
    if (pairs >= kParallelMergePairs && threads != 1) {
      for_each_chunk(pairs, threads, merge_pair);
    } else {
      for (u64 pair = 0; pair < pairs; ++pair) merge_pair(pair);
    }
  }
}
}  // namespace detail

/// Merged campaign statistics: a success/trial counter for Monte-Carlo
/// rate estimates plus a Welford accumulator for per-trial samples. Chunk
/// partials are folded with the fixed-shape merge tree, so every field —
/// including the floating-point ones — is independent of the thread count.
class TrialAccumulator {
 public:
  /// Record one Bernoulli trial (e.g. an attack attempt).
  void add_outcome(bool success) noexcept {
    ++trials_;
    successes_ += success ? 1 : 0;
  }

  /// Record one real-valued sample (e.g. guesses until success).
  void add_sample(double x) noexcept { samples_.add(x); }

  /// Fold another accumulator into this one. Order-sensitive in floating
  /// point: callers must merge partials in a fixed shape (parallel_trials
  /// uses detail::tree_merge).
  void merge(const TrialAccumulator& other) noexcept {
    trials_ += other.trials_;
    successes_ += other.successes_;
    samples_.merge(other.samples_);
  }

  [[nodiscard]] u64 trials() const noexcept { return trials_; }
  [[nodiscard]] u64 successes() const noexcept { return successes_; }
  [[nodiscard]] double success_rate() const noexcept {
    return trials_ == 0 ? 0.0
                        : static_cast<double>(successes_) /
                              static_cast<double>(trials_);
  }
  [[nodiscard]] const Accumulator& samples() const noexcept { return samples_; }

 private:
  u64 trials_ = 0;
  u64 successes_ = 0;
  Accumulator samples_;
};

/// Run `n_trials` independent trials of `fn(trial_index, seed, acc)` and
/// return the merged accumulator. `fn` must derive all randomness from
/// `seed` (via acs::Rng or otherwise) and record its outcome into `acc`;
/// it must not touch state shared with other trials. `threads == 0` uses
/// all hardware threads; the result is bitwise identical for every thread
/// count.
template <typename Fn>
[[nodiscard]] TrialAccumulator parallel_trials(u64 n_trials, u64 base_seed,
                                               Fn&& fn, unsigned threads = 0) {
  const u64 n_chunks = (n_trials + kTrialChunk - 1) / kTrialChunk;
  std::vector<TrialAccumulator> partials(n_chunks);
  detail::for_each_chunk(n_chunks, threads, [&](u64 chunk) {
    const u64 begin = chunk * kTrialChunk;
    const u64 end = std::min(n_trials, begin + kTrialChunk);
    for (u64 t = begin; t < end; ++t) {
      fn(t, trial_seed(base_seed, t), partials[chunk]);
    }
  });
  if (partials.empty()) return {};
  detail::tree_merge(partials, threads);
  return std::move(partials.front());
}

/// Map every trial to a value: out[i] = fn(i, trial_seed(base_seed, i)).
/// Results land at their trial index, so the returned vector — and any
/// sequential reduction over it — is independent of the thread count.
template <typename T, typename Fn>
[[nodiscard]] std::vector<T> parallel_map_trials(u64 n_trials, u64 base_seed,
                                                 Fn&& fn, unsigned threads = 0) {
  std::vector<T> out(n_trials);
  const u64 n_chunks = (n_trials + kTrialChunk - 1) / kTrialChunk;
  detail::for_each_chunk(n_chunks, threads, [&](u64 chunk) {
    const u64 begin = chunk * kTrialChunk;
    const u64 end = std::min(n_trials, begin + kTrialChunk);
    for (u64 t = begin; t < end; ++t) out[t] = fn(t, trial_seed(base_seed, t));
  });
  return out;
}

/// Run `n_trials` trials, each producing a mergeable shard via
/// `fn(trial_index, seed, shard)` (Shard needs `merge(const Shard&)`, e.g.
/// obs::Metrics), and fold all shards with the fixed-shape merge tree.
/// One shard per trial — not per chunk — so the tree shape depends only on
/// n_trials and the merged result is bitwise identical for every thread
/// count. This is the observability layer's aggregation primitive: metrics
/// shards from parallel campaigns go through here.
template <typename Shard, typename Fn>
[[nodiscard]] Shard parallel_sharded(u64 n_trials, u64 base_seed, Fn&& fn,
                                     unsigned threads = 0) {
  std::vector<Shard> shards(n_trials);
  const u64 n_chunks = (n_trials + kTrialChunk - 1) / kTrialChunk;
  detail::for_each_chunk(n_chunks, threads, [&](u64 chunk) {
    const u64 begin = chunk * kTrialChunk;
    const u64 end = std::min(n_trials, begin + kTrialChunk);
    for (u64 t = begin; t < end; ++t) {
      fn(t, trial_seed(base_seed, t), shards[t]);
    }
  });
  if (shards.empty()) return {};
  detail::tree_merge(shards, threads);
  return std::move(shards.front());
}

}  // namespace acs::exec
