#include "exec/parallel.h"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

namespace acs::exec {

unsigned resolve_threads(unsigned requested) noexcept {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

namespace detail {

void for_each_chunk(u64 n_chunks, unsigned threads,
                    const std::function<void(u64)>& fn) {
  threads = resolve_threads(threads);
  if (threads <= 1 || n_chunks <= 1) {
    // Same chunk walk as the pool, minus the pool: the chunk partition —
    // not the worker count — defines the result.
    for (u64 chunk = 0; chunk < n_chunks; ++chunk) fn(chunk);
    return;
  }

  threads = static_cast<unsigned>(
      std::min<u64>(threads, n_chunks));
  std::atomic<u64> next_chunk{0};
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  const auto worker = [&] {
    while (!cancelled.load(std::memory_order_relaxed)) {
      const u64 chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= n_chunks) return;
      try {
        fn(chunk);
      } catch (...) {
        const std::scoped_lock lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        cancelled.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) pool.emplace_back(worker);
  for (auto& thread : pool) thread.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace detail
}  // namespace acs::exec
