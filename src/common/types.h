// Fixed-width aliases and checked narrowing used across the project.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <type_traits>

namespace acs {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Thrown when a checked narrowing conversion would lose information.
class NarrowingError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Checked narrowing cast in the spirit of gsl::narrow: throws if the value
/// does not round-trip.
template <typename To, typename From>
constexpr To narrow(From value) {
  static_assert(std::is_arithmetic_v<To> && std::is_arithmetic_v<From>);
  const auto result = static_cast<To>(value);
  if (static_cast<From>(result) != value ||
      (std::is_signed_v<From> != std::is_signed_v<To> &&
       ((value < From{}) != (result < To{})))) {
    throw NarrowingError{"narrow: value does not fit in target type"};
  }
  return result;
}

}  // namespace acs
