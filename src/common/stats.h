// Descriptive statistics used when reporting experiment tables:
// means, sample standard deviation, geometric means of overhead ratios
// (as in the paper's Table 2), and binomial confidence intervals for
// Monte-Carlo probability estimates (Table 1 experiments).
#pragma once

#include <span>
#include <vector>

#include "common/types.h"

namespace acs {

/// Arithmetic mean. Returns 0 for an empty range.
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Sample standard deviation (n-1 denominator). Returns 0 for n < 2.
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Geometric mean of positive values. Returns 0 for an empty range.
/// Values must be > 0 (checked).
[[nodiscard]] double geomean(std::span<const double> xs);

/// Geometric mean of overheads expressed as percentages, as SPEC-style
/// summaries do: geomean over ratios (1 + p_i/100), re-expressed in percent.
[[nodiscard]] double geomean_overhead_percent(std::span<const double> percents);

/// Median (by copy-and-sort; fine for reporting-sized data).
[[nodiscard]] double median(std::span<const double> xs);

/// Wilson score interval for a binomial proportion at ~95% confidence.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  [[nodiscard]] bool contains(double p) const noexcept {
    return p >= lo && p <= hi;
  }
};
[[nodiscard]] Interval wilson_interval(u64 successes, u64 trials,
                                       double z = 1.96) noexcept;

/// Streaming accumulator for mean/stddev (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;
  /// Fold another accumulator's samples into this one (Chan et al.'s
  /// parallel-variance update). Merging partials in a fixed order yields a
  /// deterministic result, which the exec::parallel_trials runner relies on
  /// for thread-count-independent statistics.
  void merge(const Accumulator& other) noexcept;
  [[nodiscard]] u64 count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double variance() const noexcept;  // sample variance
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  u64 n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace acs
