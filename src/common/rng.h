// Deterministic pseudo-random number generation for experiments.
//
// All stochastic experiments in the repository (Monte-Carlo attack trials,
// workload generation, key generation in tests) draw from this generator so
// that benchmark tables are reproducible run-to-run. The generator is
// xoshiro256** seeded through SplitMix64, which is the recommended seeding
// procedure from the xoshiro authors.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <vector>

#include "common/types.h"

namespace acs {

/// SplitMix64 step: used to expand a single 64-bit seed into a full
/// xoshiro256** state and as a cheap standalone mixer.
[[nodiscard]] constexpr u64 splitmix64(u64& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  u64 z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, 256-bit-state PRNG.
class Rng {
 public:
  using result_type = u64;

  explicit Rng(u64 seed = 0x5eed0ACC5u) noexcept { reseed(seed); }

  /// Re-initialise the state from a single 64-bit seed.
  void reseed(u64 seed) noexcept {
    u64 sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] u64 next() noexcept {
    const u64 result = rotl_(state_[1] * 5U, 7) * 9U;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl_(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). `bound` must be non-zero — the empty
  /// range [0, 0) has no valid result, so the contract is asserted in debug
  /// builds (release builds would otherwise divide by zero). Uses rejection
  /// sampling (Lemire-style threshold) to avoid modulo bias.
  [[nodiscard]] u64 next_below(u64 bound) noexcept {
    assert(bound != 0 && "next_below: bound must be non-zero");
    const u64 threshold = (~bound + 1U) % bound;  // == 2^64 mod bound
    for (;;) {
      const u64 r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform value in [lo, hi] inclusive. `lo <= hi` required. The full
  /// range [0, 2^64-1] is handled explicitly: its span `hi - lo + 1` wraps
  /// to zero, which would otherwise hit next_below's zero-bound contract.
  [[nodiscard]] u64 next_in(u64 lo, u64 hi) noexcept {
    assert(lo <= hi && "next_in: lo must not exceed hi");
    const u64 span = hi - lo;
    if (span == ~u64{0}) return next();  // full 64-bit range
    return lo + next_below(span + 1U);
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability `p` of true.
  [[nodiscard]] bool next_bool(double p = 0.5) noexcept {
    return next_double() < p;
  }

  /// Truncated geometric draw: the number of Bernoulli(p) failures before
  /// the first success, clamped to [0, max_value]. Sampled by inversion
  /// (floor(log(1-u) / log(1-p))), so one uniform draw per call. The
  /// boundary cases are part of the contract, not UB:
  ///   * p >= 1 always returns 0 (success on the very first trial);
  ///   * p <= 0 returns max_value (the success never arrives, so the
  ///     truncation point is the whole mass);
  ///   * max_value == 0 collapses the support to the single value 0.
  [[nodiscard]] u64 next_geometric(double p, u64 max_value) noexcept {
    if (max_value == 0 || p >= 1.0) return 0;
    if (p <= 0.0) return max_value;
    const double u = next_double();  // in [0, 1)
    const double k = std::floor(std::log1p(-u) / std::log1p(-p));
    if (!(k < static_cast<double>(max_value))) return max_value;
    return static_cast<u64>(k);
  }

  // UniformRandomBitGenerator interface for <algorithm> interop.
  [[nodiscard]] static constexpr u64 min() noexcept { return 0; }
  [[nodiscard]] static constexpr u64 max() noexcept { return ~u64{0}; }
  u64 operator()() noexcept { return next(); }

 private:
  [[nodiscard]] static constexpr u64 rotl_(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<u64, 4> state_{};
};

/// Zipf(s) distribution over the support {0, ..., n-1} with
/// P(k) proportional to 1/(k+1)^s. The cumulative weights are precomputed
/// once at construction so sampling is a binary search over the CDF. The
/// degenerate supports are part of the contract:
///   * n == 0 is an empty support — asserted like Rng::next_below(0),
///     since there is no valid sample;
///   * n == 1 always yields 0 without drawing;
///   * s == 0 degenerates to the exact uniform distribution over [0, n)
///     (routed through Rng::next_below, so it is rejection-sampled and
///     bias-free rather than merely uniform-up-to-float-rounding).
/// Negative skew is rejected (asserted): the tail would dominate and the
/// "zipf" name would be a lie.
class Zipf {
 public:
  Zipf(u64 n, double s);

  /// One draw from the distribution. Uses exactly one Rng draw on the CDF
  /// path; the s == 0 fast path inherits next_below's rejection loop.
  [[nodiscard]] u64 sample(Rng& rng) const noexcept;

  [[nodiscard]] u64 size() const noexcept { return n_; }
  [[nodiscard]] double skew() const noexcept { return s_; }

 private:
  u64 n_ = 0;
  double s_ = 0.0;
  std::vector<double> cdf_;  ///< empty when the uniform fast path applies
};

}  // namespace acs
