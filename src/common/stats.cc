#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace acs {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument{"geomean: non-positive value"};
    log_sum += std::log(x);
  }
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double geomean_overhead_percent(std::span<const double> percents) {
  std::vector<double> ratios;
  ratios.reserve(percents.size());
  for (double p : percents) ratios.push_back(1.0 + p / 100.0);
  return (geomean(ratios) - 1.0) * 100.0;
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> copy(xs.begin(), xs.end());
  const auto mid = copy.begin() + static_cast<std::ptrdiff_t>(copy.size() / 2);
  std::nth_element(copy.begin(), mid, copy.end());
  if (copy.size() % 2 == 1) return *mid;
  const double hi = *mid;
  const double lo = *std::max_element(copy.begin(), mid);
  return (lo + hi) / 2.0;
}

Interval wilson_interval(u64 successes, u64 trials, double z) noexcept {
  if (trials == 0) return {0.0, 1.0};
  const double n = static_cast<double>(trials);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {std::max(0.0, (centre - margin) / denom),
          std::min(1.0, (centre + margin) / denom)};
}

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double total = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / total);
  m2_ += other.m2_ + delta * delta * (na * nb / total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace acs
