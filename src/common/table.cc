#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace acs {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument{"Table: empty header"};
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument{"Table: row width does not match header"};
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string Table::fmt_count(unsigned long long value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::fmt_prob(double p) {
  char buf[64];
  if (p != 0.0 && std::abs(p) < 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2e", p);
  } else {
    std::snprintf(buf, sizeof buf, "%.4f", p);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };
  auto print_rule = [&] {
    os << "+";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  print_rule();
  print_row(header_);
  print_rule();
  for (const auto& row : rows_) print_row(row);
  print_rule();
}

}  // namespace acs
