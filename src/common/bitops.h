// Bit-manipulation helpers shared by the crypto and pointer-authentication
// layers. All operations are on explicit-width unsigned types; behaviour is
// fully defined for every input (no UB shifts).
#pragma once

#include <bit>
#include <cassert>

#include "common/types.h"

namespace acs {

/// Rotate-left on 64-bit values. `n` is taken modulo 64.
[[nodiscard]] constexpr u64 rotl64(u64 x, unsigned n) noexcept {
  return std::rotl(x, static_cast<int>(n % 64U));
}

/// Rotate-right on 64-bit values. `n` is taken modulo 64.
[[nodiscard]] constexpr u64 rotr64(u64 x, unsigned n) noexcept {
  return std::rotr(x, static_cast<int>(n % 64U));
}

/// Rotate-left on 16-bit values (used by the QARMA LFSR-style cells).
[[nodiscard]] constexpr u16 rotl16(u16 x, unsigned n) noexcept {
  n %= 16U;
  if (n == 0) return x;
  return static_cast<u16>(static_cast<u16>(x << n) | (x >> (16U - n)));
}

/// Mask with the low `n` bits set; `bit_mask(64)` is all-ones, `bit_mask(0)`
/// is zero.
[[nodiscard]] constexpr u64 bit_mask(unsigned n) noexcept {
  assert(n <= 64);
  if (n >= 64) return ~u64{0};
  return (u64{1} << n) - 1U;
}

/// Extract bits [hi:lo] (inclusive, hi >= lo) of `x`, right-aligned.
[[nodiscard]] constexpr u64 extract_bits(u64 x, unsigned hi, unsigned lo) noexcept {
  assert(hi >= lo && hi < 64);
  return (x >> lo) & bit_mask(hi - lo + 1U);
}

/// Replace bits [hi:lo] of `x` with the low bits of `value`.
[[nodiscard]] constexpr u64 insert_bits(u64 x, unsigned hi, unsigned lo,
                                        u64 value) noexcept {
  assert(hi >= lo && hi < 64);
  const u64 field = bit_mask(hi - lo + 1U);
  return (x & ~(field << lo)) | ((value & field) << lo);
}

/// Test bit `i` of `x`.
[[nodiscard]] constexpr bool test_bit(u64 x, unsigned i) noexcept {
  assert(i < 64);
  return ((x >> i) & 1U) != 0;
}

/// Set (`on`=true) or clear bit `i` of `x`.
[[nodiscard]] constexpr u64 assign_bit(u64 x, unsigned i, bool on) noexcept {
  assert(i < 64);
  const u64 bit = u64{1} << i;
  return on ? (x | bit) : (x & ~bit);
}

/// Population count.
[[nodiscard]] constexpr unsigned popcount64(u64 x) noexcept {
  return static_cast<unsigned>(std::popcount(x));
}

}  // namespace acs
