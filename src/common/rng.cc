// rng.h is header-only; this translation unit exists so the common library
// has a home for future out-of-line RNG utilities and to anchor the target.
#include "common/rng.h"

namespace acs {
// Intentionally empty.
}  // namespace acs
