// Out-of-line RNG utilities. The core xoshiro256** generator is
// header-only (rng.h); this translation unit holds the distribution
// helpers whose construction cost or code size does not belong in the
// header — currently the Zipf CDF precomputation.
#include "common/rng.h"

#include <algorithm>

namespace acs {

Zipf::Zipf(u64 n, double s) : n_(n), s_(s) {
  assert(n != 0 && "Zipf: empty support has no valid sample");
  assert(s >= 0.0 && "Zipf: negative skew is not zipfian");
  // Degenerate supports and zero skew never touch the CDF: n == 1 has a
  // single outcome and s == 0 routes through next_below for an exactly
  // uniform (rejection-sampled) draw. Leaving cdf_ empty keeps sample()
  // branch-predictable and avoids float rounding entirely on those paths.
  if (n_ <= 1 || s_ == 0.0) return;
  cdf_.reserve(static_cast<size_t>(n_));
  double total = 0.0;
  for (u64 k = 0; k < n_; ++k) {
    total += std::pow(static_cast<double>(k + 1), -s_);
    cdf_.push_back(total);
  }
  // Normalising by the final cumulative weight makes cdf_.back() exactly
  // 1.0, so the lower_bound below can never run off the end even if the
  // uniform draw lands on the last representable double below 1.
  for (double& c : cdf_) c /= total;
}

u64 Zipf::sample(Rng& rng) const noexcept {
  if (n_ == 1) return 0;
  if (cdf_.empty()) return rng.next_below(n_);  // s == 0: exact uniform
  const double u = rng.next_double();  // in [0, 1)
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return n_ - 1;  // unreachable after normalisation
  return static_cast<u64>(it - cdf_.begin());
}

}  // namespace acs
