// Plain-text table printer used by the bench binaries to render the paper's
// tables and figure series in a stable, diff-friendly format.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace acs {

/// Column-aligned console table. Usage:
///   Table t({"bench", "baseline", "overhead %"});
///   t.add_row({"x264", "123456", "2.75"});
///   t.print(std::cout);
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Formats a floating-point cell with fixed precision.
  [[nodiscard]] static std::string fmt(double value, int precision = 2);

  /// Formats an integer-valued cell with thousands separators.
  [[nodiscard]] static std::string fmt_count(unsigned long long value);

  /// Formats a probability in scientific style when small (e.g. "1.5e-05").
  [[nodiscard]] static std::string fmt_prob(double p);

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace acs
