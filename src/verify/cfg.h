// Per-function control-flow-graph reconstruction over an assembled
// sim::Program.
//
// Function boundaries come from the union of function entries (valid BLR
// targets) and UnwindInfo records; within a function, blocks are split at
// branch targets and after every control-transfer instruction. Irregular
// control flow is recovered from the metadata the compiler already emits:
//
//   * tail calls       — a `b` whose target lies outside the function;
//   * setjmp/longjmp   — `bl` to one of the runtime wrapper symbols; the
//                        instruction after a setjmp call is a longjmp
//                        continuation (control re-enters there);
//   * exceptions       — `svc #kThrow` terminates its block; catch landing
//                        pads (UnwindInfo::catches) are extra block entries;
//   * signal handlers  — the `mov xN, #handler; svc #kSigaction` pattern
//                        registers an extra root for reachability.
#pragma once

#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/isa.h"

namespace acs::verify {

/// One straight-line run of instructions, [begin, end).
struct BasicBlock {
  u64 begin = 0;
  u64 end = 0;               ///< one past the last instruction
  std::vector<u64> succs;    ///< intra-function successors (block begins)
  bool is_catch_pad = false; ///< entered by the kernel's throw dispatch
};

/// CFG plus call/flow summaries for one function.
struct FunctionCfg {
  std::string name;
  u64 entry = 0;
  u64 end = 0;
  /// Unwind record for the function, or nullptr for the runtime stubs
  /// (main trampoline, setjmp/longjmp wrappers, __sigtramp, ...), which the
  /// compiler emits without metadata.
  const sim::UnwindInfo* unwind = nullptr;
  std::vector<BasicBlock> blocks;  ///< sorted by begin
  /// Exception tag -> landing-pad address (mirrors unwind->catches).
  std::vector<std::pair<u64, u64>> catch_pads;
  std::vector<u64> direct_callees;   ///< `bl` targets
  std::vector<u64> tail_callees;     ///< `b` targets outside [entry, end)
  /// Function-entry addresses materialised into a register (`mov xN, #fn`):
  /// potential blr/thread/sigaction targets.
  std::vector<u64> address_taken;
  /// Instruction after each `bl` to a setjmp wrapper — where a longjmp
  /// re-enters this function.
  std::vector<u64> setjmp_continuations;
  bool calls_longjmp = false;
  bool has_indirect_call = false;    ///< any blr/br
  bool has_calls = false;            ///< any bl/blr or tail call

  /// Block starting exactly at `addr`, or nullptr.
  [[nodiscard]] const BasicBlock* block_at(u64 addr) const noexcept;
  /// Block whose range contains `addr`, or nullptr.
  [[nodiscard]] const BasicBlock* block_containing(u64 addr) const noexcept;
};

struct ProgramCfg {
  const sim::Program* program = nullptr;
  std::vector<FunctionCfg> functions;  ///< sorted by entry
  std::unordered_map<u64, std::size_t> index_by_entry;
  /// (signal number, handler entry) pairs recovered from the static
  /// sigaction registration pattern.
  std::vector<std::pair<u64, u64>> signal_handlers;

  [[nodiscard]] const FunctionCfg* function_at(u64 entry) const noexcept;
  [[nodiscard]] const FunctionCfg* function_containing(u64 addr) const noexcept;
};

/// Reconstruct the whole-program CFG.
[[nodiscard]] ProgramCfg build_cfg(const sim::Program& program);

/// Function entries reachable from "main" and the loader-initialised
/// function-pointer slots, following direct-call, tail-call, address-taken
/// and signal-handler edges. Sorted ascending.
[[nodiscard]] std::vector<u64> reachable_entries(const ProgramCfg& cfg);

}  // namespace acs::verify
