// Static binary verifier for the return-address protection invariants.
//
// Consumes an assembled sim::Program plus the protection scheme it was
// compiled under, reconstructs per-function CFGs (verify/cfg.h), and runs a
// fixed-point abstract interpretation over registers and stack slots with
// the security-class lattice of verify/lattice.h. The pass proves — on
// *every* path of the emitted code, not just the dynamically exercised
// ones — the paper's Listing 1–3 invariants:
//
//   ACS001  a raw return address that round-tripped attacker-writable
//           memory reaches a return unauthenticated (Table 1 "reuse",
//           baseline/canary columns)
//   ACS002  a PAC-signed chain value is spilled with its PAC in the clear
//           (Listing 2 vs Listing 3 — the PACStack-nomask ablation)
//   ACS003  an SP-signed return address is spilled (Listing 1 — the
//           pac-ret reuse window, Section 6.1)
//   ACS004  a return consumes a signed-but-never-authenticated value
//           (would fault on every path; a compiler bug, not an attack)
//   ACS005  the chain register X28 is spilled to attacker-writable memory
//           outside the authenticated chain protocol (the Section 9.2
//           uninstrumented-library hazard)
//   ACS006  the Section 7.1 leaf heuristic is misapplied (a calling
//           function left frameless, or a call-free function framed)
//   ACS007  SP (or the shadow-stack pointer) is not balanced at return
//   ACS008  a PAC mask is live across a call or stored to memory
//           (Section 5.2 mask hygiene)
//
// The verifier is differential by construction: kPacStack and kShadowStack
// verify clean, kPacStackNoMask is flagged with exactly ACS002, and
// kNone/kCanary with exactly ACS001 — the static re-derivation of the
// Table 1 columns.
#pragma once

#include <string>
#include <vector>

#include "compiler/scheme.h"
#include "sim/isa.h"

namespace acs::verify {

enum class Code : u8 {
  kRawRetReuse = 1,      ///< ACS001
  kUnmaskedAretSpill,    ///< ACS002
  kSignedRetSpill,       ///< ACS003
  kUnauthenticatedRet,   ///< ACS004
  kChainInterop,         ///< ACS005
  kLeafHeuristic,        ///< ACS006
  kSpImbalance,          ///< ACS007
  kMaskLeak,             ///< ACS008
};

/// "ACS001", "ACS002", ...
[[nodiscard]] std::string code_name(Code code);

/// One verified-invariant violation, addressed to an instruction.
struct Diagnostic {
  Code code;
  u64 address = 0;
  std::string function;
  std::string message;
  /// Provenance: the store instruction that put the offending value into
  /// attacker-writable memory. For ACS002/ACS003 the flagged instruction
  /// *is* the store, so this equals `address`; for ACS001 it is the spill
  /// whose reload the flagged return consumes. 0 when no store is involved
  /// (structural and balance findings).
  u64 store_address = 0;

  bool operator==(const Diagnostic&) const = default;
};

struct Report {
  compiler::Scheme scheme = compiler::Scheme::kNone;
  std::vector<Diagnostic> diagnostics;
  std::size_t functions_reachable = 0;  ///< functions the analysis visited
  std::size_t functions_verified = 0;   ///< of those, with unwind metadata

  [[nodiscard]] bool clean() const noexcept { return diagnostics.empty(); }
  [[nodiscard]] bool has(Code code) const noexcept;
  [[nodiscard]] std::size_t count(Code code) const noexcept;
  /// Sorted, de-duplicated codes present in the report.
  [[nodiscard]] std::vector<Code> codes() const;
};

/// Verify `program` against the invariants of `scheme`. Only code reachable
/// from "main" (plus loader-installed function pointers and registered
/// signal handlers) is analysed — the runtime emits all scheme wrappers
/// unconditionally, and dead ones must not be held against the scheme.
[[nodiscard]] Report verify_program(const sim::Program& program,
                                    compiler::Scheme scheme);

/// Human-readable rendering, one line per diagnostic.
[[nodiscard]] std::string to_string(const Report& report);

}  // namespace acs::verify
