#include "verify/verifier.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <deque>
#include <map>
#include <set>
#include <sstream>

#include "verify/cfg.h"
#include "verify/lattice.h"

namespace acs::verify {

namespace {

using compiler::Scheme;
using sim::AddrMode;
using sim::Instruction;
using sim::Opcode;
using sim::Reg;
using sim::UnwindKind;

[[nodiscard]] bool is_chain_scheme(Scheme scheme) noexcept {
  return scheme == Scheme::kPacStack || scheme == Scheme::kPacStackNoMask;
}

[[nodiscard]] bool is_chain_frame(UnwindKind kind) noexcept {
  return kind == UnwindKind::kAcsChainMasked ||
         kind == UnwindKind::kAcsChainUnmasked;
}

[[nodiscard]] bool is_ret_class(ValueClass c) noexcept {
  switch (c) {
    case ValueClass::kRawRet:
    case ValueClass::kAuthedRet:
    case ValueClass::kMaskedRet:
    case ValueClass::kSignedRet:
    case ValueClass::kTaintedRet:
      return true;
    case ValueClass::kOther:
    case ValueClass::kMask:
      return false;
  }
  return false;
}

/// Abstract value: a class plus the instruction that produced it, so
/// diagnostics can point at the originating spill/load.
struct RegVal {
  ValueClass cls = ValueClass::kOther;
  u64 origin = 0;

  bool operator==(const RegVal&) const = default;
};

/// Abstract machine state at one program point. Stack slots are keyed by
/// their offset from the function-entry SP; shadow slots by their offset
/// from the function-entry shadow pointer (X18).
struct AbsState {
  std::array<RegVal, sim::kNumRegs> regs{};
  i64 sp = 0;
  bool sp_known = true;
  i64 shadow = 0;
  bool shadow_known = true;
  std::map<i64, RegVal> stack;
  std::map<i64, RegVal> shadow_mem;

  bool operator==(const AbsState&) const = default;
};

/// Join `b` into `a`, keeping `a`'s value on ties so repeated joins of the
/// same state are no-ops (monotone => the fixed point terminates).
void join_into(AbsState& a, const AbsState& b) {
  for (std::size_t i = 0; i < a.regs.size(); ++i) {
    if (b.regs[i].cls > a.regs[i].cls) a.regs[i] = b.regs[i];
  }
  if (!a.sp_known || !b.sp_known || a.sp != b.sp) {
    a.sp_known = false;
    a.stack.clear();
  } else {
    for (const auto& [slot, val] : b.stack) {
      const auto it = a.stack.find(slot);
      if (it == a.stack.end()) {
        a.stack.emplace(slot, val);
      } else if (val.cls > it->second.cls) {
        it->second = val;
      }
    }
  }
  if (!a.shadow_known || !b.shadow_known || a.shadow != b.shadow) {
    a.shadow_known = false;
    a.shadow_mem.clear();
  } else {
    for (const auto& [slot, val] : b.shadow_mem) {
      const auto it = a.shadow_mem.find(slot);
      if (it == a.shadow_mem.end()) {
        a.shadow_mem.emplace(slot, val);
      } else if (val.cls > it->second.cls) {
        it->second = val;
      }
    }
  }
}

/// Where a load/store lands, in the abstract memory model.
enum class Region : u8 {
  kStack,    ///< the task stack — attacker-writable (Section 3)
  kShadow,   ///< the X18 shadow region — protected by assumption
  kUnknown,  ///< any other base register — treated as attacker-writable
};

struct MemRef {
  Region region = Region::kUnknown;
  i64 slot = 0;
  bool slot_known = false;
};

/// Resolve the effective address of a memory access and apply the
/// pre/post-index base update to the abstract SP / shadow pointer.
[[nodiscard]] MemRef resolve(AbsState& st, Reg base, i64 imm, AddrMode mode) {
  const auto index = [&](i64& cursor, bool known) -> MemRef {
    i64 slot = 0;
    switch (mode) {
      case AddrMode::kOffset: slot = cursor + imm; break;
      case AddrMode::kPreIndex: cursor += imm; slot = cursor; break;
      case AddrMode::kPostIndex: slot = cursor; cursor += imm; break;
    }
    return {base == sim::kSsp ? Region::kShadow : Region::kStack, slot, known};
  };
  if (base == Reg::kSp) return index(st.sp, st.sp_known);
  if (base == sim::kSsp) return index(st.shadow, st.shadow_known);
  return {};
}

class Analyzer {
 public:
  Analyzer(const sim::Program& program, const ProgramCfg& cfg, Scheme scheme,
           ValueClass chain_boundary, bool emit)
      : program_(program), cfg_(cfg), scheme_(scheme),
        chain_boundary_(chain_boundary), emit_(emit) {}

  /// Join of the chain-register class observed at every call boundary —
  /// the inter-procedural calling-convention summary for X28.
  ValueClass chain_observed = ValueClass::kOther;

  std::vector<Diagnostic> diagnostics;

  void analyze_function(const FunctionCfg& fn) {
    if (fn.blocks.empty()) return;
    std::map<u64, AbsState> in_states;
    std::deque<u64> worklist;
    in_states.emplace(fn.entry, entry_state());
    worklist.push_back(fn.entry);
    for (const auto& [tag, pad] : fn.catch_pads) {
      (void)tag;
      if (in_states.emplace(pad, pad_state(fn)).second) {
        worklist.push_back(pad);
      }
    }

    // Safety valve; the join is monotone over a finite lattice, so this
    // bound is never reached by a well-formed program.
    std::size_t budget = fn.blocks.size() * 256 + 1024;
    while (!worklist.empty() && budget-- > 0) {
      const u64 begin = worklist.front();
      worklist.pop_front();
      const BasicBlock* block = fn.block_at(begin);
      if (block == nullptr) continue;
      AbsState st = in_states.at(begin);
      for (u64 addr = block->begin; addr < block->end;
           addr += sim::kInstrBytes) {
        step(addr, program_.at(addr), st, fn);
      }
      for (const u64 succ : block->succs) {
        const auto it = in_states.find(succ);
        if (it == in_states.end()) {
          in_states.emplace(succ, st);
          worklist.push_back(succ);
        } else {
          AbsState joined = it->second;
          join_into(joined, st);
          if (!(joined == it->second)) {
            it->second = std::move(joined);
            worklist.push_back(succ);
          }
        }
      }
    }
  }

  /// Structural (non-dataflow) checks: the Section 7.1 leaf heuristic must
  /// match the emitted frame kind. Runtime stubs carry no unwind metadata
  /// and are exempt.
  void check_structure(const FunctionCfg& fn) {
    if (!emit_ || fn.unwind == nullptr) return;
    const UnwindKind kind = fn.unwind->kind;
    const bool frameless = kind == UnwindKind::kNoFrame ||
                           kind == UnwindKind::kSignedNoFrame;
    if (frameless && fn.has_calls) {
      diag(Code::kLeafHeuristic, fn.entry, fn,
           "function performs calls but was lowered without a return-address "
           "frame - the Section 7.1 leaf heuristic only exempts call-free "
           "functions");
    } else if (!frameless && !fn.has_calls) {
      diag(Code::kLeafHeuristic, fn.entry, fn,
           "call-free leaf function carries a return-address frame - the "
           "Section 7.1 heuristic should have left it uninstrumented");
    }
  }

 private:
  [[nodiscard]] AbsState entry_state() const {
    AbsState st;
    st.regs[static_cast<std::size_t>(sim::kLr)] = {ValueClass::kRawRet, 0};
    st.regs[static_cast<std::size_t>(sim::kCr)] = {chain_boundary_, 0};
    return st;
  }

  /// State at a catch landing pad: the kernel's unwinder re-enters the
  /// function mid-body with the frame intact, LR holding a kernel-verified
  /// return path and CR restored per the chain protocol. Slot contents are
  /// unknown (conservatively kOther), so pad paths can only under-, never
  /// over-report.
  [[nodiscard]] AbsState pad_state(const FunctionCfg& fn) const {
    AbsState st = entry_state();
    if (fn.unwind != nullptr) {
      st.sp = -static_cast<i64>(fn.unwind->prologue_bytes +
                                fn.unwind->frame_bytes);
      if (fn.unwind->kind == UnwindKind::kShadowStack) st.shadow = 8;
    }
    return st;
  }

  [[nodiscard]] static RegVal get(const AbsState& st, Reg r) {
    if (r == Reg::kXzr || r == Reg::kSp) return {};
    return st.regs[static_cast<std::size_t>(r)];
  }

  static void set(AbsState& st, Reg r, RegVal v) {
    if (r == Reg::kXzr || r == Reg::kSp) return;
    st.regs[static_cast<std::size_t>(r)] = v;
  }

  void diag(Code code, u64 addr, const FunctionCfg& fn, std::string message,
            u64 store_address = 0) {
    if (!emit_ || !fired_.emplace(code, addr).second) return;
    diagnostics.push_back(
        {code, addr, fn.name, std::move(message), store_address});
  }

  [[nodiscard]] RegVal do_load(AbsState& st, const MemRef& ref, u64 addr) {
    if (ref.region == Region::kShadow) {
      if (ref.slot_known) {
        const auto it = st.shadow_mem.find(ref.slot);
        if (it != st.shadow_mem.end()) return it->second;
      }
      // The shadow region is protected: unknown slots are trusted
      // return-address storage, never tainted.
      return {ValueClass::kRawRet, addr};
    }
    if (ref.region == Region::kStack && ref.slot_known) {
      const auto it = st.stack.find(ref.slot);
      if (it != st.stack.end()) {
        RegVal v = it->second;
        // A plaintext return address that round-trips writable memory is
        // attacker-controlled on reload.
        if (v.cls == ValueClass::kRawRet || v.cls == ValueClass::kAuthedRet) {
          v.cls = ValueClass::kTaintedRet;
        }
        return v;
      }
    }
    return {ValueClass::kOther, addr};
  }

  void do_store(AbsState& st, Reg src, const MemRef& ref, u64 addr,
                const FunctionCfg& fn, bool byte_sized) {
    RegVal v = get(st, src);
    // A post-authentication value is plaintext again: spilling it is a raw
    // return-address spill, not an authenticated one.
    if (v.cls == ValueClass::kAuthedRet) v.cls = ValueClass::kRawRet;
    const bool writable = ref.region != Region::kShadow;
    if (writable) {
      if (v.cls == ValueClass::kSignedRet) {
        if (is_chain_scheme(scheme_)) {
          diag(Code::kUnmaskedAretSpill, addr, fn,
               std::string{"unmasked aret (PAC in the clear) spilled to "
                           "attacker-writable memory - Listing 2 hazard; "
                           "Listing 3 masks the chain value before the "
                           "spill"},
               addr);
        } else {
          diag(Code::kSignedRetSpill, addr, fn,
               std::string{"SP-signed return address spilled to "
                           "attacker-writable memory - the pac-ret reuse "
                           "window (Section 6.1)"},
               addr);
        }
      } else if (v.cls == ValueClass::kMask) {
        diag(Code::kMaskLeak, addr, fn,
             "PAC mask stored to memory - Section 5.2 requires masks to "
             "stay register-resident and be cleared after use");
      }
      if (src == sim::kCr && is_chain_scheme(scheme_) &&
          fn.unwind != nullptr && !is_chain_frame(fn.unwind->kind)) {
        diag(Code::kChainInterop, addr, fn,
             "chain register X28 spilled to attacker-writable memory "
             "outside the authenticated chain protocol - the Section 9.2 "
             "uninstrumented-library hazard");
      }
    }
    const RegVal stored = byte_sized ? RegVal{ValueClass::kOther, addr}
                                     : RegVal{v.cls, addr};
    if (ref.region == Region::kStack && ref.slot_known) {
      st.stack[ref.slot] = stored;
    } else if (ref.region == Region::kShadow && ref.slot_known) {
      st.shadow_mem[ref.slot] = stored;
    }
  }

  void check_mask_live(const AbsState& st, u64 addr, const FunctionCfg& fn,
                       const char* what) {
    for (std::size_t i = 0; i <= static_cast<std::size_t>(sim::kLr); ++i) {
      if (st.regs[i].cls != ValueClass::kMask) continue;
      diag(Code::kMaskLeak, addr, fn,
           std::string{"PAC mask live in "} +
               sim::reg_name(static_cast<Reg>(i)) + " across a " + what +
               " - Section 5.2 mask hygiene");
    }
  }

  void do_call(AbsState& st, u64 addr, const FunctionCfg& fn) {
    check_mask_live(st, addr, fn, "call");
    chain_observed = join(chain_observed, get(st, sim::kCr).cls);
    // Caller-saved registers are dead across the call; the callee restores
    // the chain register per the scheme's calling convention.
    for (auto r = static_cast<std::size_t>(Reg::kX0);
         r <= static_cast<std::size_t>(Reg::kX17); ++r) {
      st.regs[r] = {ValueClass::kOther, addr};
    }
    set(st, sim::kLr, {ValueClass::kOther, addr});
    set(st, sim::kCr, {chain_boundary_, addr});
  }

  void check_balance(const AbsState& st, u64 addr, const FunctionCfg& fn) {
    if (st.sp_known && st.sp != 0) {
      diag(Code::kSpImbalance, addr, fn,
           "SP is " + std::to_string(st.sp) +
               " bytes off its entry value at function exit");
    }
    if (st.shadow_known && st.shadow != 0) {
      diag(Code::kSpImbalance, addr, fn,
           "shadow-stack pointer is " + std::to_string(st.shadow) +
               " bytes off its entry value at function exit");
    }
  }

  void check_return_value(const AbsState& st, Reg target, u64 addr,
                          const FunctionCfg& fn) {
    const RegVal v = get(st, target);
    if (v.cls == ValueClass::kTaintedRet) {
      std::ostringstream msg;
      msg << "raw return address spilled to attacker-writable memory (store "
             "at 0x"
          << std::hex << v.origin
          << ") and consumed by a return without authentication - Table 1 "
             "arbitrary-reuse hazard";
      diag(Code::kRawRetReuse, addr, fn, msg.str(), v.origin);
    } else if (v.cls == ValueClass::kSignedRet ||
               v.cls == ValueClass::kMaskedRet ||
               v.cls == ValueClass::kMask) {
      diag(Code::kUnauthenticatedRet, addr, fn,
           std::string{"return consumes a "} + class_name(v.cls) +
               " value that was never authenticated - this path faults "
               "unconditionally (missing aut)");
    }
  }

  void do_ret(AbsState& st, Reg target, u64 addr, const FunctionCfg& fn,
              bool authenticates) {
    if (!authenticates) check_return_value(st, target, addr, fn);
    check_balance(st, addr, fn);
  }

  /// A tail call hands the current LR and chain register to the callee: it
  /// is a call boundary and a return-path checkpoint at once (Listing 8).
  void do_tail(AbsState& st, u64 addr, const FunctionCfg& fn) {
    check_mask_live(st, addr, fn, "tail call");
    chain_observed = join(chain_observed, get(st, sim::kCr).cls);
    check_return_value(st, sim::kLr, addr, fn);
    check_balance(st, addr, fn);
  }

  void step(u64 addr, const Instruction& in, AbsState& st,
            const FunctionCfg& fn) {
    switch (in.op) {
      case Opcode::kNop:
      case Opcode::kWork:
      case Opcode::kCmpImm:
      case Opcode::kCmpReg:
      case Opcode::kHlt:
      case Opcode::kBCond:
      case Opcode::kCbz:
      case Opcode::kCbnz:
      case Opcode::kBr:
        break;
      case Opcode::kMovImm:
        set(st, in.rd, {ValueClass::kOther, addr});
        break;
      case Opcode::kMovReg:
        if (in.rd == Reg::kSp) {
          st.sp_known = false;
          st.stack.clear();
        } else {
          RegVal v = get(st, in.rn);
          if (v.origin == 0) v.origin = addr;
          set(st, in.rd, v);
          if (in.rd == sim::kSsp) {
            st.shadow_known = false;
            st.shadow_mem.clear();
          }
        }
        break;
      case Opcode::kAddImm:
      case Opcode::kSubImm: {
        const i64 delta = in.op == Opcode::kAddImm ? in.imm : -in.imm;
        if (in.rd == Reg::kSp) {
          if (in.rn == Reg::kSp && st.sp_known) {
            st.sp += delta;
          } else {
            st.sp_known = false;
            st.stack.clear();
          }
        } else if (in.rd == sim::kSsp) {
          if (in.rn == sim::kSsp && st.shadow_known) {
            st.shadow += delta;
          } else {
            st.shadow_known = false;
            st.shadow_mem.clear();
          }
        } else {
          set(st, in.rd, {ValueClass::kOther, addr});
        }
        break;
      }
      case Opcode::kEorReg: {
        const ValueClass a = get(st, in.rn).cls;
        const ValueClass b = get(st, in.rm).cls;
        ValueClass out = ValueClass::kOther;
        const auto pair = [&](ValueClass x, ValueClass y) {
          return (a == x && b == y) || (a == y && b == x);
        };
        if (pair(ValueClass::kSignedRet, ValueClass::kMask)) {
          out = ValueClass::kMaskedRet;
        } else if (pair(ValueClass::kMaskedRet, ValueClass::kMask)) {
          out = ValueClass::kSignedRet;
        }
        set(st, in.rd, {out, addr});
        break;
      }
      case Opcode::kAddReg:
      case Opcode::kSubReg:
      case Opcode::kAndReg:
      case Opcode::kOrrReg:
      case Opcode::kLslImm:
      case Opcode::kLsrImm:
      case Opcode::kPacga:
        set(st, in.rd, {ValueClass::kOther, addr});
        break;
      case Opcode::kPacia: {
        const ValueClass c = get(st, in.rd).cls;
        set(st, in.rd,
            {is_ret_class(c) ? ValueClass::kSignedRet : ValueClass::kMask,
             addr});
        break;
      }
      case Opcode::kAutia:
        set(st, in.rd, {ValueClass::kAuthedRet, addr});
        break;
      case Opcode::kXpaci: {
        const ValueClass c = get(st, in.rd).cls;
        set(st, in.rd,
            {is_ret_class(c) ? ValueClass::kRawRet : ValueClass::kOther,
             addr});
        break;
      }
      case Opcode::kLdr: {
        const MemRef ref = resolve(st, in.rn, in.imm, in.mode);
        if (in.rd == Reg::kSp) {
          st.sp_known = false;
          st.stack.clear();
        } else {
          set(st, in.rd, do_load(st, ref, addr));
          if (in.rd == sim::kSsp) {
            st.shadow_known = false;
            st.shadow_mem.clear();
          }
        }
        break;
      }
      case Opcode::kLdrb: {
        (void)resolve(st, in.rn, in.imm, in.mode);
        set(st, in.rd, {ValueClass::kOther, addr});
        break;
      }
      case Opcode::kLdp: {
        MemRef ref = resolve(st, in.rn, in.imm, in.mode);
        set(st, in.rd, do_load(st, ref, addr));
        MemRef second = ref;
        second.slot += 8;
        set(st, in.rm, do_load(st, second, addr));
        break;
      }
      case Opcode::kStr:
      case Opcode::kStrb: {
        const MemRef ref = resolve(st, in.rn, in.imm, in.mode);
        do_store(st, in.rd, ref, addr, fn, in.op == Opcode::kStrb);
        break;
      }
      case Opcode::kStp: {
        MemRef ref = resolve(st, in.rn, in.imm, in.mode);
        do_store(st, in.rd, ref, addr, fn, false);
        MemRef second = ref;
        second.slot += 8;
        do_store(st, in.rm, second, addr, fn, false);
        break;
      }
      case Opcode::kBl:
      case Opcode::kBlr:
        do_call(st, addr, fn);
        break;
      case Opcode::kB:
        if (in.target < fn.entry || in.target >= fn.end) {
          do_tail(st, addr, fn);
        }
        break;
      case Opcode::kRet:
        do_ret(st, in.rn, addr, fn, /*authenticates=*/false);
        break;
      case Opcode::kRetaa:
        // retaa = autia(LR, SP) + ret: tampering poisons the pointer and
        // the return faults, so the integrity check is satisfied.
        do_ret(st, sim::kLr, addr, fn, /*authenticates=*/true);
        break;
      case Opcode::kSvc:
        set(st, Reg::kX0, {ValueClass::kOther, addr});
        break;
    }
  }

  const sim::Program& program_;
  const ProgramCfg& cfg_;
  Scheme scheme_;
  ValueClass chain_boundary_;
  bool emit_;
  std::set<std::pair<Code, u64>> fired_;
};

}  // namespace

std::string code_name(Code code) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "ACS%03u", static_cast<unsigned>(code));
  return buf;
}

bool Report::has(Code code) const noexcept {
  return std::any_of(diagnostics.begin(), diagnostics.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

std::size_t Report::count(Code code) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [&](const Diagnostic& d) { return d.code == code; }));
}

std::vector<Code> Report::codes() const {
  std::vector<Code> out;
  for (const auto& d : diagnostics) out.push_back(d.code);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Report verify_program(const sim::Program& program, compiler::Scheme scheme) {
  const ProgramCfg cfg = build_cfg(program);
  const std::vector<u64> reachable = reachable_entries(cfg);

  // Inter-procedural fixed point over the chain register's class at call
  // boundaries (the X28 calling convention the scheme establishes): start
  // from the kernel-seeded aret_0 (no PAC material, kOther) and iterate
  // until the boundary class is stable, then run the reporting pass.
  ValueClass boundary = ValueClass::kOther;
  for (int iter = 0; iter < 8; ++iter) {
    Analyzer pass(program, cfg, scheme, boundary, /*emit=*/false);
    for (const u64 entry : reachable) {
      pass.analyze_function(*cfg.function_at(entry));
    }
    const ValueClass next = pass.chain_observed;
    if (next == boundary) break;
    boundary = next;
  }

  Analyzer pass(program, cfg, scheme, boundary, /*emit=*/true);
  Report report;
  report.scheme = scheme;
  report.functions_reachable = reachable.size();
  for (const u64 entry : reachable) {
    const FunctionCfg& fn = *cfg.function_at(entry);
    pass.analyze_function(fn);
    pass.check_structure(fn);
    if (fn.unwind != nullptr) ++report.functions_verified;
  }
  report.diagnostics = std::move(pass.diagnostics);
  // Deterministic report contract: sorted by (address, code) and free of
  // duplicates regardless of block-visit order in the analysis above.
  std::sort(report.diagnostics.begin(), report.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.address != b.address) return a.address < b.address;
              if (a.code != b.code) return a.code < b.code;
              return a.store_address < b.store_address;
            });
  report.diagnostics.erase(
      std::unique(report.diagnostics.begin(), report.diagnostics.end()),
      report.diagnostics.end());
  return report;
}

std::string to_string(const Report& report) {
  std::ostringstream out;
  out << "scheme " << compiler::scheme_name(report.scheme) << ": "
      << report.functions_reachable << " functions reachable, "
      << report.functions_verified << " with unwind metadata, "
      << report.diagnostics.size() << " finding(s)\n";
  for (const auto& d : report.diagnostics) {
    out << "  " << code_name(d.code) << " @0x" << std::hex << d.address
        << std::dec << " in " << d.function << ": " << d.message << "\n";
  }
  return out.str();
}

}  // namespace acs::verify
