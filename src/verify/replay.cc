#include "verify/replay.h"

#include <vector>

#include "inject/engine.h"
#include "kernel/machine.h"

namespace acs::verify {

namespace {

using inject::FaultKind;
using kernel::StopReason;

/// Instruction budget per machine-run segment: generous for every corpus
/// workload while bounding a diverted run that spins.
constexpr u64 kRunBudget = 50'000'000;

/// Upper bound on breakpoint stops examined during observation phases.
constexpr int kMaxStops = 256;

struct Hart {
  kernel::Process* process = nullptr;
  kernel::Task* task = nullptr;
};

/// The hart currently paused at a breakpoint, if any.
[[nodiscard]] Hart breakpointed(kernel::Machine& machine) {
  for (auto& process : machine.processes()) {
    for (auto& task : process->tasks) {
      if (task->cpu().state() == sim::RunState::kBreakpoint) {
        return {process.get(), task.get()};
      }
    }
  }
  return {};
}

[[nodiscard]] u64 delivered(const inject::Engine& engine, FaultKind kind) {
  return engine.summary().injected[static_cast<std::size_t>(kind)];
}

/// ACS001: corrupt the witnessed slot right after the spill, stop at the
/// witnessed `ret`, single-step it and require the planted divert target.
[[nodiscard]] ReplayResult replay_raw_ret(const sim::Program& program,
                                          const Witness& w, u64 seed) {
  const u64 divert = program.symbol("main");
  inject::Engine engine(
      {.plan = {{.kind = FaultKind::kStoreWord,
                 .payload = divert,
                 .at_pc = w.store_address + sim::kInstrBytes,
                 .addr = static_cast<u64>(w.sp_rel_offset()),
                 .sp_rel = true}}});
  kernel::MachineOptions options;
  options.seed = seed;
  options.injector = &engine;
  kernel::Machine machine(program, options);
  machine.add_global_breakpoint(w.use_address);
  const auto stop = machine.run(kRunBudget);
  if (stop.reason != StopReason::kBreakpoint) {
    return {Verdict::kUnconfirmed, "witnessed return was never executed"};
  }
  if (delivered(engine, FaultKind::kStoreWord) != 1) {
    return {Verdict::kUnconfirmed,
            "slot corruption was not delivered before the return"};
  }
  const Hart hart = breakpointed(machine);
  if (hart.task == nullptr) {
    return {Verdict::kUnconfirmed, "no hart paused at the witnessed return"};
  }
  machine.clear_global_breakpoints();
  sim::Cpu& cpu = hart.task->cpu();
  cpu.resume();
  (void)cpu.step();
  if (cpu.pc() == divert) {
    return {Verdict::kConfirmed,
            "return consumed the corrupted slot and diverted to the planted "
            "address"};
  }
  return {Verdict::kRefuted, "return ignored the corrupted slot"};
}

/// ACS002: read the disclosed chain spill at the flagged store, then stop
/// at the dynamic caller's `autia` and require the live pre-auth token to
/// be bit-identical to the disclosure; single-step to show acceptance.
[[nodiscard]] ReplayResult replay_unmasked(const sim::Program& program,
                                           const Witness& w, u64 seed) {
  kernel::MachineOptions options;
  options.seed = seed;
  kernel::Machine machine(program, options);
  machine.add_global_breakpoint(w.store_address + sim::kInstrBytes);
  auto stop = machine.run(kRunBudget);
  if (stop.reason != StopReason::kBreakpoint) {
    return {Verdict::kUnconfirmed, "witnessed spill was never executed"};
  }
  const Hart hart = breakpointed(machine);
  if (hart.task == nullptr) {
    return {Verdict::kUnconfirmed, "no hart paused at the witnessed spill"};
  }
  sim::Cpu& cpu = hart.task->cpu();
  const u64 slot_addr =
      cpu.reg(sim::Reg::kSp) + static_cast<u64>(w.sp_rel_offset());
  if (!hart.process->mem.is_mapped(slot_addr)) {
    return {Verdict::kUnconfirmed, "witnessed slot is not mapped"};
  }
  const u64 disclosed = hart.process->mem.raw_read_u64(slot_addr);
  const u64 caller_ret = cpu.reg(sim::kLr);
  const sim::UnwindInfo* caller = program.unwind_for(caller_ret);
  if (caller == nullptr) {
    return {Verdict::kUnconfirmed, "dynamic caller has no unwind metadata"};
  }
  u64 autia = 0;
  for (u64 addr = caller->entry; addr < caller->end;
       addr += sim::kInstrBytes) {
    if (program.at(addr).op == sim::Opcode::kAutia) {
      autia = addr;
      break;
    }
  }
  if (autia == 0) {
    return {Verdict::kUnconfirmed, "dynamic caller is not chain-instrumented"};
  }
  machine.clear_global_breakpoints();
  machine.add_global_breakpoint(autia);
  cpu.resume();
  stop = machine.run(kRunBudget);
  if (stop.reason != StopReason::kBreakpoint) {
    return {Verdict::kUnconfirmed, "caller's authenticator was never reached"};
  }
  const Hart at_auth = breakpointed(machine);
  if (at_auth.task == nullptr) {
    return {Verdict::kUnconfirmed, "no hart paused at the authenticator"};
  }
  sim::Cpu& auth_cpu = at_auth.task->cpu();
  const u64 live = auth_cpu.reg(sim::kLr);
  if (live != disclosed) {
    return {Verdict::kRefuted,
            "disclosed spill differs from the authenticated token (the chain "
            "value was masked before the spill)"};
  }
  machine.clear_global_breakpoints();
  auth_cpu.resume();
  (void)auth_cpu.step();
  const auto& layout = at_auth.process->pauth().layout();
  if (auth_cpu.state() != sim::RunState::kFaulted &&
      auth_cpu.reg(sim::kLr) == layout.strip(disclosed)) {
    return {Verdict::kConfirmed,
            "authenticator accepted the exact token the adversary read from "
            "writable memory"};
  }
  return {Verdict::kRefuted, "authentication of the disclosed token failed"};
}

/// ACS003: observe activations at the spill, pair two with a shared entry
/// SP and different signed tokens, then substitute activation i's token
/// into activation j and require the witnessed `retaa` to divert.
[[nodiscard]] ReplayResult replay_signed_spill(const sim::Program& program,
                                               const Witness& w, u64 seed) {
  struct Obs {
    u64 entry_sp = 0;
    u64 token = 0;
  };
  std::vector<Obs> obs;
  pa::VaLayout layout;
  {
    kernel::MachineOptions options;
    options.seed = seed;
    kernel::Machine machine(program, options);
    layout = machine.init_process().pauth().layout();
    machine.add_global_breakpoint(w.store_address + sim::kInstrBytes);
    for (int i = 0; i < kMaxStops; ++i) {
      const auto stop = machine.run(kRunBudget);
      if (stop.reason != StopReason::kBreakpoint) break;
      const Hart hart = breakpointed(machine);
      if (hart.task == nullptr) break;
      sim::Cpu& cpu = hart.task->cpu();
      const u64 sp = cpu.reg(sim::Reg::kSp);
      const u64 slot_addr = sp + static_cast<u64>(w.sp_rel_offset());
      if (hart.process->mem.is_mapped(slot_addr)) {
        obs.push_back({sp - static_cast<u64>(w.sp_after_store),
                       hart.process->mem.raw_read_u64(slot_addr)});
      }
      cpu.resume();
    }
  }

  std::size_t pi = 0, pj = 0;
  bool found = false;
  for (std::size_t j = 1; j < obs.size() && !found; ++j) {
    for (std::size_t i = 0; i < j && !found; ++i) {
      if (obs[i].entry_sp == obs[j].entry_sp &&
          layout.strip(obs[i].token) != layout.strip(obs[j].token)) {
        pi = i;
        pj = j;
        found = true;
      }
    }
  }
  if (!found) {
    return {Verdict::kUnconfirmed,
            "no reuse pair (shared SP modifier, different return address) "
            "was observed at this seed"};
  }

  inject::Engine engine(
      {.plan = {{.kind = FaultKind::kStoreWord,
                 .payload = obs[pi].token,
                 .at_pc = w.store_address + sim::kInstrBytes,
                 .occurrence = pj + 1,
                 .addr = static_cast<u64>(w.sp_rel_offset()),
                 .sp_rel = true}}});
  kernel::MachineOptions options;
  options.seed = seed;
  options.injector = &engine;
  kernel::Machine machine(program, options);
  machine.add_global_breakpoint(w.use_address);
  for (std::size_t hit = 1; hit <= pj + 1; ++hit) {
    const auto stop = machine.run(kRunBudget);
    if (stop.reason != StopReason::kBreakpoint) {
      return {Verdict::kUnconfirmed,
              "witnessed authenticated return was never reached"};
    }
    const Hart hart = breakpointed(machine);
    if (hart.task == nullptr) {
      return {Verdict::kUnconfirmed, "no hart paused at the witnessed return"};
    }
    sim::Cpu& cpu = hart.task->cpu();
    if (hit <= pj) {
      cpu.resume();
      continue;
    }
    if (delivered(engine, FaultKind::kStoreWord) != 1) {
      return {Verdict::kUnconfirmed,
              "token substitution was not delivered before the return"};
    }
    machine.clear_global_breakpoints();
    cpu.resume();
    (void)cpu.step();
    if (cpu.state() != sim::RunState::kFaulted &&
        cpu.pc() == layout.strip(obs[pi].token)) {
      return {Verdict::kConfirmed,
              "replayed token authenticated under the shared SP modifier and "
              "diverted the return"};
    }
    return {Verdict::kRefuted,
            "substituted token was rejected by the authenticated return"};
  }
  return {Verdict::kUnconfirmed, "witnessed return was never reached"};
}

}  // namespace

const char* verdict_name(Verdict verdict) noexcept {
  switch (verdict) {
    case Verdict::kConfirmed: return "confirmed";
    case Verdict::kRefuted: return "refuted";
    case Verdict::kUnconfirmed: return "unconfirmed";
  }
  return "?";
}

ReplayResult replay_witness(const sim::Program& program,
                            const Witness& witness, u64 seed) {
  switch (witness.code) {
    case Code::kRawRetReuse: return replay_raw_ret(program, witness, seed);
    case Code::kUnmaskedAretSpill:
      return replay_unmasked(program, witness, seed);
    case Code::kSignedRetSpill:
      return replay_signed_spill(program, witness, seed);
    default:
      return {Verdict::kUnconfirmed, "code has no replay procedure"};
  }
}

ReplaySummary replay_all(const sim::Program& program,
                         const std::vector<Witness>& witnesses, u64 seed) {
  ReplaySummary summary;
  for (const Witness& w : witnesses) {
    switch (replay_witness(program, w, seed).verdict) {
      case Verdict::kConfirmed: ++summary.confirmed; break;
      case Verdict::kRefuted: ++summary.refuted; break;
      case Verdict::kUnconfirmed: ++summary.unconfirmed; break;
    }
  }
  return summary;
}

}  // namespace acs::verify
