// Witness replay: drive a synthesized attack witness through the
// simulator and confirm the predicted architectural effect.
//
// Each replay builds a fresh kernel::Machine over the witnessed binary and
// stages the attack with the inject-layer's pc-triggered faults plus
// debugger breakpoints — never with powers beyond the Section 3 adversary
// (arbitrary reads/writes of attacker-writable memory; no register or
// kernel-state access):
//
//   ACS001  a kStoreWord fault overwrites the witnessed stack slot right
//           after the spill; at the witnessed `ret` the victim diverts to
//           the planted address — confirmed when the single-stepped return
//           lands exactly there.
//   ACS002  phase 1 reads the disclosed chain spill at the flagged store;
//           phase 2 stops at the (dynamically resolved) caller's `autia`
//           and confirms the live pre-authentication token is bit-identical
//           to the disclosure — the adversary already held the credential
//           the authenticator then accepts (single-stepped to show the aut
//           passes). Against a masked chain the disclosure differs from
//           every authenticated token and the replay refutes the witness —
//           the dynamic re-derivation of the Listing 2 / Listing 3 split.
//   ACS003  phase 1 observes activations at the flagged spill and pairs two
//           with an equal entry SP (the shared modifier) and different
//           return addresses; phase 2 re-runs with a kStoreWord fault
//           substituting activation i's signed token into activation j and
//           confirms the witnessed `retaa` authenticates it and diverts.
//
// Verdicts: kConfirmed (predicted violation reproduced), kRefuted (the
// staged attack ran but the architecture rejected it), kUnconfirmed (the
// witnessed path was not exercised dynamically — e.g. no reuse pair
// materialised at this seed). Replays are deterministic at a fixed seed.
#pragma once

#include <string>
#include <vector>

#include "verify/witness.h"

namespace acs::verify {

enum class Verdict : u8 {
  kConfirmed,    ///< the predicted violation reproduced dynamically
  kRefuted,      ///< the staged attack was rejected by the architecture
  kUnconfirmed,  ///< the witnessed path was not exercised at this seed
};

/// "confirmed", "refuted", "unconfirmed".
[[nodiscard]] const char* verdict_name(Verdict verdict) noexcept;

struct ReplayResult {
  Verdict verdict = Verdict::kUnconfirmed;
  std::string detail;
};

/// Replay one witness against `program` (the binary it was synthesized
/// from). Deterministic for a fixed (witness, seed).
[[nodiscard]] ReplayResult replay_witness(const sim::Program& program,
                                          const Witness& witness,
                                          u64 seed = 1);

/// Aggregate verdict counts for a witness set.
struct ReplaySummary {
  std::size_t confirmed = 0;
  std::size_t refuted = 0;
  std::size_t unconfirmed = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return confirmed + refuted + unconfirmed;
  }
};

[[nodiscard]] ReplaySummary replay_all(const sim::Program& program,
                                       const std::vector<Witness>& witnesses,
                                       u64 seed = 1);

}  // namespace acs::verify
