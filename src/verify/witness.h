// Attack-witness synthesis: from a diagnostic to a concrete counterexample.
//
// The verifier's diagnostics (verify/verifier.h) over-approximate — they
// flag every instruction that *could* participate in an attack on any
// path. A Witness under-approximates: it is only synthesized when the
// analysis can reconstruct a concrete, replayable attack path — the call
// chain from the program entry to the victim function, the block path from
// the function entry to the offending store, the exact stack slot the
// adversary must corrupt (entry-SP-relative), and the consuming
// instruction whose behaviour the corruption changes. verify/replay.h
// drives a witness through kernel::Machine with a fault plan built from
// these fields and confirms the predicted architectural effect.
//
// Witnesses exist for the three attackable findings:
//
//   ACS001  (baseline/canary) the return consumes a raw return address
//           reloaded from writable memory: overwriting the witnessed slot
//           between spill and return diverts control to an arbitrary
//           address — effect "control-flow-divert".
//   ACS002  (pacstack-nomask) the spilled chain value carries its PAC in
//           the clear: reading the slot discloses a valid (address, PAC)
//           credential, turning the Section 6.1 guessing game (success
//           2^-b) into a certainty — effect "forged-pac-accept".
//   ACS003  (pac-ret) the SP-signed return address is spilled while two
//           activations of the victim can share an SP modifier: replaying
//           one activation's token in the other passes authentication and
//           diverts control — effect "control-flow-divert". Synthesis
//           requires the static reuse-pair gate (some caller holds two
//           distinct call sites into the victim).
//
// Gating makes witness synthesis deliberately incomplete (tail-call
// consumers, indirect-only call chains, SP-unknown paths, and programs
// with non-local control flow — fork/threads/signals/throws/longjmp —
// produce a diagnostic but no witness); the accepted contract is the
// converse: every synthesized witness must replay to a confirmed
// violation.
#pragma once

#include <string>
#include <vector>

#include "verify/verifier.h"

namespace acs::verify {

/// A machine-checkable counterexample for one diagnostic.
struct Witness {
  Code code{};
  compiler::Scheme scheme{};
  std::string function;    ///< victim function (contains store and use)
  u64 diag_address = 0;    ///< the instruction the diagnostic flagged
  u64 store_address = 0;   ///< the spill that exposes the value
  u64 use_address = 0;     ///< the consuming ret/retaa (ACS002: the aut)
  i64 slot = 0;            ///< attacked stack slot, entry-SP-relative
  i64 sp_after_store = 0;  ///< abstract SP right after the store executes
  /// Direct-call chain from the program entry to the victim function.
  std::vector<std::string> call_chain;
  /// Block begins of a path from the function entry to the store's block.
  std::vector<u64> block_trace;
  /// Predicted architectural effect: "control-flow-divert" (ACS001/ACS003)
  /// or "forged-pac-accept" (ACS002).
  std::string effect;

  /// The store's slot as an offset from the live SP at store+4 — what a
  /// PlannedFault{.sp_rel = true} takes as its address.
  [[nodiscard]] i64 sp_rel_offset() const noexcept {
    return slot - sp_after_store;
  }

  bool operator==(const Witness&) const = default;
};

/// Synthesize witnesses for every ACS001/ACS002/ACS003 diagnostic in
/// `report` that passes the replayability gates. Deterministic: witnesses
/// follow the report's diagnostic order.
[[nodiscard]] std::vector<Witness> synthesize_witnesses(
    const sim::Program& program, compiler::Scheme scheme,
    const Report& report);

/// Single-line JSON object for one witness (machine-readable artifact).
[[nodiscard]] std::string to_json(const Witness& witness);

}  // namespace acs::verify
