#include "verify/witness.h"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "kernel/syscalls.h"
#include "verify/cfg.h"

namespace acs::verify {

namespace {

using compiler::Scheme;
using sim::AddrMode;
using sim::Instruction;
using sim::Opcode;
using sim::Reg;
using sim::UnwindKind;

[[nodiscard]] bool is_chain_scheme(Scheme scheme) noexcept {
  return scheme == Scheme::kPacStack || scheme == Scheme::kPacStackNoMask;
}

[[nodiscard]] bool is_chain_frame(const sim::UnwindInfo* info) noexcept {
  return info != nullptr && (info->kind == UnwindKind::kAcsChainMasked ||
                             info->kind == UnwindKind::kAcsChainUnmasked);
}

/// Apply one instruction's effect on the abstract SP (entry-relative).
/// Returns false when SP becomes statically unknown on this path.
[[nodiscard]] bool apply_sp(const Instruction& in, i64& sp) {
  // Base-register writeback of SP-based memory accesses.
  const bool is_mem = in.op == Opcode::kStr || in.op == Opcode::kStrb ||
                      in.op == Opcode::kStp || in.op == Opcode::kLdr ||
                      in.op == Opcode::kLdrb || in.op == Opcode::kLdp;
  if (is_mem && in.rn == Reg::kSp && in.mode != AddrMode::kOffset) {
    sp += in.imm;
  }
  switch (in.op) {
    case Opcode::kAddImm:
    case Opcode::kSubImm:
      if (in.rd == Reg::kSp) {
        if (in.rn != Reg::kSp) return false;
        sp += in.op == Opcode::kAddImm ? in.imm : -in.imm;
      }
      return true;
    case Opcode::kMovReg:
    case Opcode::kMovImm:
    case Opcode::kAddReg:
    case Opcode::kSubReg:
    case Opcode::kAndReg:
    case Opcode::kOrrReg:
    case Opcode::kEorReg:
    case Opcode::kLslImm:
    case Opcode::kLsrImm:
      return in.rd != Reg::kSp;
    case Opcode::kLdr:
    case Opcode::kLdrb:
    case Opcode::kLdp:
      return in.rd != Reg::kSp && in.rm != Reg::kSp;
    default:
      return true;
  }
}

/// A block path from the function entry to the store, plus the abstract SP
/// reconstructed along it.
struct StorePath {
  std::vector<u64> block_trace;  ///< block begins, entry first
  i64 sp_before = 0;             ///< SP when the store is about to execute
};

/// BFS a block path from `fn.entry` to the block containing `store`, then
/// walk it accumulating SP updates. Fails (nullopt) when no path exists or
/// SP is not statically known along the discovered path.
[[nodiscard]] std::optional<StorePath> walk_to_store(const FunctionCfg& fn,
                                                     const sim::Program& program,
                                                     u64 store) {
  const BasicBlock* target = fn.block_containing(store);
  if (target == nullptr) return std::nullopt;
  std::map<u64, u64> parent;  // block begin -> predecessor begin
  std::deque<u64> queue;
  parent.emplace(fn.entry, fn.entry);
  queue.push_back(fn.entry);
  while (!queue.empty()) {
    const u64 begin = queue.front();
    queue.pop_front();
    if (begin == target->begin) break;
    const BasicBlock* block = fn.block_at(begin);
    if (block == nullptr) continue;
    for (const u64 succ : block->succs) {
      if (parent.emplace(succ, begin).second) queue.push_back(succ);
    }
  }
  if (!parent.contains(target->begin)) return std::nullopt;

  StorePath path;
  for (u64 at = target->begin;; at = parent.at(at)) {
    path.block_trace.push_back(at);
    if (at == fn.entry) break;
  }
  std::reverse(path.block_trace.begin(), path.block_trace.end());

  i64 sp = 0;
  for (const u64 begin : path.block_trace) {
    const BasicBlock* block = fn.block_at(begin);
    const u64 stop = begin == target->begin ? store : block->end;
    for (u64 addr = block->begin; addr < stop; addr += sim::kInstrBytes) {
      if (!apply_sp(program.at(addr), sp)) return std::nullopt;
    }
  }
  path.sp_before = sp;
  return path;
}

/// Locate the attacked slot within the store instruction: the SP-relative
/// offset of the spilled return-address/chain value, plus the SP after the
/// store's writeback. Fails for non-SP-based stores and for pair stores
/// where neither register is LR or the chain register.
struct SlotInfo {
  i64 slot = 0;
  i64 sp_after = 0;
};

[[nodiscard]] std::optional<SlotInfo> locate_slot(const Instruction& in,
                                                  i64 sp_before) {
  if (in.rn != Reg::kSp) return std::nullopt;
  i64 base = 0;
  i64 sp_after = sp_before;
  switch (in.mode) {
    case AddrMode::kOffset: base = sp_before + in.imm; break;
    case AddrMode::kPreIndex: sp_after += in.imm; base = sp_after; break;
    case AddrMode::kPostIndex: base = sp_before; sp_after += in.imm; break;
  }
  SlotInfo info;
  info.sp_after = sp_after;
  if (in.op == Opcode::kStr) {
    info.slot = base;
    return info;
  }
  if (in.op == Opcode::kStp) {
    if (in.rm == sim::kLr || in.rm == sim::kCr) {
      info.slot = base + 8;
      return info;
    }
    if (in.rd == sim::kLr || in.rd == sim::kCr) {
      info.slot = base;
      return info;
    }
  }
  return std::nullopt;
}

/// First instruction with opcode `op` in [entry, end), or 0.
[[nodiscard]] u64 find_opcode(const sim::Program& program, u64 entry, u64 end,
                              Opcode op) {
  for (u64 addr = entry; addr < end; addr += sim::kInstrBytes) {
    if (program.at(addr).op == op) return addr;
  }
  return 0;
}

/// Direct-call chain (function names) from "main" to `target`, or empty
/// when the target is only reachable indirectly.
[[nodiscard]] std::vector<std::string> call_chain_to(const ProgramCfg& cfg,
                                                     u64 target) {
  const auto main_it = cfg.program->symbols.find("main");
  if (main_it == cfg.program->symbols.end()) return {};
  const u64 root = main_it->second;
  std::map<u64, u64> parent;
  std::deque<u64> queue;
  parent.emplace(root, root);
  queue.push_back(root);
  while (!queue.empty()) {
    const u64 entry = queue.front();
    queue.pop_front();
    if (entry == target) break;
    const FunctionCfg* fn = cfg.function_at(entry);
    if (fn == nullptr) continue;
    for (const auto* edges : {&fn->direct_callees, &fn->tail_callees}) {
      for (const u64 callee : *edges) {
        if (parent.emplace(callee, entry).second) queue.push_back(callee);
      }
    }
  }
  if (!parent.contains(target)) return {};
  std::vector<std::string> chain;
  for (u64 at = target;; at = parent.at(at)) {
    const FunctionCfg* fn = cfg.function_at(at);
    chain.push_back(fn != nullptr ? fn->name : "?");
    if (at == root) break;
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

/// Count the `bl` sites in [entry, end) targeting `callee`.
[[nodiscard]] std::size_t count_call_sites(const sim::Program& program,
                                           u64 entry, u64 end, u64 callee) {
  std::size_t sites = 0;
  for (u64 addr = entry; addr < end; addr += sim::kInstrBytes) {
    const Instruction& in = program.at(addr);
    if (in.op == Opcode::kBl && in.target == callee) ++sites;
  }
  return sites;
}

/// Whole-program replayability gate: the replay procedures rely on the
/// k-th execution of a prologue store pairing with the k-th execution of
/// the matching return, and on callees returning into their callers.
/// Reachable non-local control flow — fork, threads, signals, exception
/// throws, setjmp/longjmp — breaks either property, so no witness is
/// synthesized anywhere in such a program.
[[nodiscard]] bool program_is_replayable(const sim::Program& program,
                                         const ProgramCfg& cfg,
                                         const std::set<u64>& reachable) {
  std::set<u64> unwinders;
  for (const char* name :
       {"__setjmp", "__longjmp", "__acs_setjmp", "__acs_longjmp"}) {
    const auto it = program.symbols.find(name);
    if (it != program.symbols.end()) unwinders.insert(it->second);
  }
  for (const auto& fn : cfg.functions) {
    if (!reachable.contains(fn.entry)) continue;
    for (u64 addr = fn.entry; addr < fn.end; addr += sim::kInstrBytes) {
      const Instruction& in = program.at(addr);
      if (in.op == Opcode::kSvc) {
        switch (static_cast<kernel::Syscall>(in.imm)) {
          case kernel::Syscall::kFork:
          case kernel::Syscall::kThreadCreate:
          case kernel::Syscall::kSigaction:
          case kernel::Syscall::kKill:
          case kernel::Syscall::kThrow:
            return false;
          default:
            break;
        }
      }
      if (in.op == Opcode::kBl && unwinders.contains(in.target)) {
        return false;
      }
    }
  }
  return true;
}

class Synthesizer {
 public:
  Synthesizer(const sim::Program& program, Scheme scheme)
      : program_(program), scheme_(scheme), cfg_(build_cfg(program)) {
    for (const u64 entry : reachable_entries(cfg_)) reachable_.insert(entry);
    replayable_ = program_is_replayable(program_, cfg_, reachable_);
  }

  [[nodiscard]] std::optional<Witness> synthesize(const Diagnostic& diag) {
    switch (diag.code) {
      case Code::kRawRetReuse: return raw_ret_reuse(diag);
      case Code::kUnmaskedAretSpill: return unmasked_spill(diag);
      case Code::kSignedRetSpill: return signed_spill(diag);
      default: return std::nullopt;
    }
  }

 private:
  /// Shared frame: victim function, store path, slot, call chain. The
  /// per-code synthesizers add their own use site and gates on top.
  [[nodiscard]] std::optional<Witness> frame(const Diagnostic& diag,
                                             u64 store) {
    if (!replayable_) return std::nullopt;
    if (store == 0 || !program_.contains(store)) return std::nullopt;
    const FunctionCfg* fn = cfg_.function_containing(diag.address);
    if (fn == nullptr || !reachable_.contains(fn->entry)) return std::nullopt;
    if (store < fn->entry || store >= fn->end) return std::nullopt;
    const auto path = walk_to_store(*fn, program_, store);
    if (!path) return std::nullopt;
    const auto slot = locate_slot(program_.at(store), path->sp_before);
    if (!slot) return std::nullopt;
    const auto chain = call_chain_to(cfg_, fn->entry);
    if (chain.empty()) return std::nullopt;

    Witness w;
    w.code = diag.code;
    w.scheme = scheme_;
    w.function = fn->name;
    w.diag_address = diag.address;
    w.store_address = store;
    w.slot = slot->slot;
    w.sp_after_store = slot->sp_after;
    w.call_chain = chain;
    w.block_trace = path->block_trace;
    return w;
  }

  /// ACS001: the flagged instruction must be a plain `ret` (tail-call
  /// consumers are not replayed) — overwriting the witnessed slot between
  /// the spill and this return diverts control.
  [[nodiscard]] std::optional<Witness> raw_ret_reuse(const Diagnostic& diag) {
    if (program_.at(diag.address).op != Opcode::kRet) return std::nullopt;
    auto w = frame(diag, diag.store_address);
    if (!w) return std::nullopt;
    w->use_address = diag.address;
    w->effect = "control-flow-divert";
    return w;
  }

  /// ACS002: the flagged store spills the chain register with its PAC in
  /// the clear. Replay confirms the disclosure at the *caller's*
  /// authenticator, so every static direct caller must itself be
  /// chain-instrumented (the caller is resolved dynamically at replay;
  /// use_address stays 0).
  [[nodiscard]] std::optional<Witness> unmasked_spill(const Diagnostic& diag) {
    if (!is_chain_scheme(scheme_)) return std::nullopt;
    const Instruction& in = program_.at(diag.address);
    if (in.op != Opcode::kStr || in.rd != sim::kCr) return std::nullopt;
    auto w = frame(diag, diag.address);
    if (!w) return std::nullopt;
    const FunctionCfg* fn = cfg_.function_containing(diag.address);
    std::size_t callers = 0;
    for (const auto& caller : cfg_.functions) {
      if (!reachable_.contains(caller.entry)) continue;
      if (count_call_sites(program_, caller.entry, caller.end, fn->entry) ==
          0) {
        continue;
      }
      if (!is_chain_frame(caller.unwind) ||
          find_opcode(program_, caller.entry, caller.end, Opcode::kAutia) ==
              0) {
        return std::nullopt;  // disclosure has no in-chain authenticator
      }
      ++callers;
    }
    if (callers == 0) return std::nullopt;
    w->effect = "forged-pac-accept";
    return w;
  }

  /// ACS003: the SP-signed return address is spilled; a reuse pair needs
  /// two activations with a shared SP modifier and different return
  /// addresses, so some reachable caller must hold two distinct call sites
  /// into the victim. The consuming `retaa` is the use site.
  [[nodiscard]] std::optional<Witness> signed_spill(const Diagnostic& diag) {
    if (scheme_ != Scheme::kPacRet && scheme_ != Scheme::kPacRetLeaf) {
      return std::nullopt;
    }
    auto w = frame(diag, diag.address);
    if (!w) return std::nullopt;
    const FunctionCfg* fn = cfg_.function_containing(diag.address);
    const u64 retaa = find_opcode(program_, fn->entry, fn->end, Opcode::kRetaa);
    if (retaa == 0) return std::nullopt;
    bool has_pair = false;
    for (const auto& caller : cfg_.functions) {
      if (!reachable_.contains(caller.entry)) continue;
      if (count_call_sites(program_, caller.entry, caller.end, fn->entry) >=
          2) {
        has_pair = true;
        break;
      }
    }
    if (!has_pair) return std::nullopt;
    w->use_address = retaa;
    w->effect = "control-flow-divert";
    return w;
  }

  const sim::Program& program_;
  Scheme scheme_;
  ProgramCfg cfg_;
  std::set<u64> reachable_;
  bool replayable_ = false;
};

void append_escaped(std::ostringstream& out, const std::string& s) {
  out << '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out << '\\';
    out << c;
  }
  out << '"';
}

}  // namespace

std::vector<Witness> synthesize_witnesses(const sim::Program& program,
                                          compiler::Scheme scheme,
                                          const Report& report) {
  Synthesizer synth(program, scheme);
  std::vector<Witness> witnesses;
  for (const Diagnostic& diag : report.diagnostics) {
    if (auto w = synth.synthesize(diag)) witnesses.push_back(std::move(*w));
  }
  return witnesses;
}

std::string to_json(const Witness& w) {
  std::ostringstream out;
  out << "{\"code\": \"" << code_name(w.code) << "\", \"scheme\": ";
  append_escaped(out, compiler::scheme_name(w.scheme));
  out << ", \"function\": ";
  append_escaped(out, w.function);
  out << ", \"diag_address\": " << w.diag_address
      << ", \"store_address\": " << w.store_address
      << ", \"use_address\": " << w.use_address << ", \"slot\": " << w.slot
      << ", \"sp_after_store\": " << w.sp_after_store << ", \"call_chain\": [";
  for (std::size_t i = 0; i < w.call_chain.size(); ++i) {
    if (i > 0) out << ", ";
    append_escaped(out, w.call_chain[i]);
  }
  out << "], \"block_trace\": [";
  for (std::size_t i = 0; i < w.block_trace.size(); ++i) {
    if (i > 0) out << ", ";
    out << w.block_trace[i];
  }
  out << "], \"effect\": ";
  append_escaped(out, w.effect);
  out << "}";
  return out.str();
}

}  // namespace acs::verify
