#include "verify/cfg.h"

#include <algorithm>
#include <set>

#include "kernel/syscalls.h"

namespace acs::verify {

namespace {

using sim::Instruction;
using sim::Opcode;

[[nodiscard]] bool is_setjmp_symbol(const std::string& name) {
  return name == "__setjmp" || name == "__acs_setjmp";
}

[[nodiscard]] bool is_longjmp_symbol(const std::string& name) {
  return name == "__longjmp" || name == "__acs_longjmp";
}

[[nodiscard]] bool is_throw_svc(const Instruction& in) {
  return in.op == Opcode::kSvc &&
         in.imm == static_cast<i64>(kernel::Syscall::kThrow);
}

/// Does this instruction end a basic block unconditionally?
[[nodiscard]] bool ends_block(const Instruction& in) {
  switch (in.op) {
    case Opcode::kB:
    case Opcode::kBCond:
    case Opcode::kCbz:
    case Opcode::kCbnz:
    case Opcode::kBr:
    case Opcode::kRet:
    case Opcode::kRetaa:
    case Opcode::kHlt:
      return true;
    case Opcode::kSvc:
      return is_throw_svc(in);
    default:
      return false;
  }
}

/// Best symbol name for a function entry: the assembler registers function
/// labels alongside local labels (Lxxx, vuln_N); prefer the non-local one.
[[nodiscard]] std::string name_for(const sim::Program& program, u64 entry) {
  std::vector<std::string> candidates;
  for (const auto& [name, addr] : program.symbols) {
    if (addr == entry) candidates.push_back(name);
  }
  std::sort(candidates.begin(), candidates.end());
  for (const auto& name : candidates) {
    if (name.rfind("L", 0) != 0 && name.rfind("vuln_", 0) != 0) return name;
  }
  return candidates.empty() ? "fn_" + std::to_string(entry) : candidates[0];
}

void build_function(const sim::Program& program, FunctionCfg& fn,
                    const std::set<u64>& entry_set) {
  // --- leaders -------------------------------------------------------
  std::set<u64> leaders{fn.entry};
  if (fn.unwind != nullptr) {
    for (const auto& [tag, pad] : fn.unwind->catches) {
      fn.catch_pads.emplace_back(tag, pad);
      leaders.insert(pad);
    }
  }
  for (u64 addr = fn.entry; addr < fn.end; addr += sim::kInstrBytes) {
    const Instruction& in = program.at(addr);
    switch (in.op) {
      case Opcode::kB:
      case Opcode::kBCond:
      case Opcode::kCbz:
      case Opcode::kCbnz:
        if (in.target >= fn.entry && in.target < fn.end) {
          leaders.insert(in.target);
        }
        break;
      default:
        break;
    }
    if (ends_block(in) && addr + sim::kInstrBytes < fn.end) {
      leaders.insert(addr + sim::kInstrBytes);
    }
  }

  // --- blocks and intra-function edges -------------------------------
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    BasicBlock block;
    block.begin = *it;
    const auto next = std::next(it);
    block.end = next == leaders.end() ? fn.end : *next;
    const u64 last = block.end - sim::kInstrBytes;
    const Instruction& in = program.at(last);
    switch (in.op) {
      case Opcode::kB:
        if (in.target >= fn.entry && in.target < fn.end) {
          block.succs.push_back(in.target);
        } else {
          fn.tail_callees.push_back(in.target);
          fn.has_calls = true;
        }
        break;
      case Opcode::kBCond:
      case Opcode::kCbz:
      case Opcode::kCbnz:
        if (in.target >= fn.entry && in.target < fn.end) {
          block.succs.push_back(in.target);
        }
        if (block.end < fn.end) block.succs.push_back(block.end);
        break;
      case Opcode::kRet:
      case Opcode::kRetaa:
      case Opcode::kHlt:
      case Opcode::kBr:
        break;  // no intra-function successor
      default:
        if (is_throw_svc(in)) break;  // kernel transfers control
        if (block.end < fn.end) block.succs.push_back(block.end);
        break;
    }
    fn.blocks.push_back(std::move(block));
  }
  for (const auto& [tag, pad] : fn.catch_pads) {
    for (auto& block : fn.blocks) {
      if (block.begin == pad) block.is_catch_pad = true;
    }
  }

  // --- call and address-taken summaries ------------------------------
  for (u64 addr = fn.entry; addr < fn.end; addr += sim::kInstrBytes) {
    const Instruction& in = program.at(addr);
    switch (in.op) {
      case Opcode::kBl: {
        fn.direct_callees.push_back(in.target);
        fn.has_calls = true;
        const std::string callee = name_for(program, in.target);
        if (is_setjmp_symbol(callee)) {
          fn.setjmp_continuations.push_back(addr + sim::kInstrBytes);
        }
        if (is_longjmp_symbol(callee)) fn.calls_longjmp = true;
        break;
      }
      case Opcode::kBlr:
        fn.has_indirect_call = true;
        fn.has_calls = true;
        break;
      case Opcode::kBr:
        fn.has_indirect_call = true;
        break;
      case Opcode::kMovImm:
        if (in.imm > 0 && entry_set.contains(static_cast<u64>(in.imm))) {
          fn.address_taken.push_back(static_cast<u64>(in.imm));
        }
        break;
      default:
        break;
    }
  }
}

/// Recover (signal, handler) pairs from `mov x0, #sig; mov x1, #handler;
/// svc #kSigaction` — the only registration pattern the codegen emits.
void scan_signal_handlers(const sim::Program& program, const FunctionCfg& fn,
                          const std::set<u64>& entry_set,
                          std::vector<std::pair<u64, u64>>& out) {
  for (u64 addr = fn.entry; addr < fn.end; addr += sim::kInstrBytes) {
    const Instruction& in = program.at(addr);
    if (in.op != Opcode::kSvc ||
        in.imm != static_cast<i64>(kernel::Syscall::kSigaction)) {
      continue;
    }
    u64 signum = 0;
    u64 handler = 0;
    const u64 window = std::min<u64>(4, (addr - fn.entry) / sim::kInstrBytes);
    for (u64 back = 1; back <= window; ++back) {
      const Instruction& prev = program.at(addr - back * sim::kInstrBytes);
      if (prev.op != Opcode::kMovImm) continue;
      if (prev.rd == sim::Reg::kX0) signum = static_cast<u64>(prev.imm);
      if (prev.rd == sim::Reg::kX1 &&
          entry_set.contains(static_cast<u64>(prev.imm))) {
        handler = static_cast<u64>(prev.imm);
      }
    }
    if (handler != 0) out.emplace_back(signum, handler);
  }
}

}  // namespace

const BasicBlock* FunctionCfg::block_at(u64 addr) const noexcept {
  for (const auto& block : blocks) {
    if (block.begin == addr) return &block;
  }
  return nullptr;
}

const BasicBlock* FunctionCfg::block_containing(u64 addr) const noexcept {
  for (const auto& block : blocks) {
    if (addr >= block.begin && addr < block.end) return &block;
  }
  return nullptr;
}

const FunctionCfg* ProgramCfg::function_at(u64 entry) const noexcept {
  const auto it = index_by_entry.find(entry);
  return it == index_by_entry.end() ? nullptr : &functions[it->second];
}

const FunctionCfg* ProgramCfg::function_containing(u64 addr) const noexcept {
  for (const auto& fn : functions) {
    if (addr >= fn.entry && addr < fn.end) return &fn;
  }
  return nullptr;
}

ProgramCfg build_cfg(const sim::Program& program) {
  ProgramCfg cfg;
  cfg.program = &program;

  std::set<u64> starts(program.function_entries.begin(),
                       program.function_entries.end());
  for (const auto& info : program.unwind) starts.insert(info.entry);
  starts.insert(program.base);

  for (auto it = starts.begin(); it != starts.end(); ++it) {
    FunctionCfg fn;
    fn.entry = *it;
    const auto next = std::next(it);
    fn.end = next == starts.end() ? program.end() : *next;
    if (fn.entry >= fn.end) continue;
    fn.name = name_for(program, fn.entry);
    fn.unwind = program.unwind_for(fn.entry);
    build_function(program, fn, starts);
    scan_signal_handlers(program, fn, starts, cfg.signal_handlers);
    cfg.index_by_entry.emplace(fn.entry, cfg.functions.size());
    cfg.functions.push_back(std::move(fn));
  }
  return cfg;
}

std::vector<u64> reachable_entries(const ProgramCfg& cfg) {
  std::set<u64> seen;
  std::vector<u64> worklist;
  const auto add = [&](u64 entry) {
    if (cfg.index_by_entry.contains(entry) && seen.insert(entry).second) {
      worklist.push_back(entry);
    }
  };

  const auto& program = *cfg.program;
  const auto main_it = program.symbols.find("main");
  add(main_it != program.symbols.end() ? main_it->second : program.base);
  for (const auto& [addr, value] : program.data_init) {
    (void)addr;
    add(value);
  }

  while (!worklist.empty()) {
    const u64 entry = worklist.back();
    worklist.pop_back();
    const FunctionCfg& fn = *cfg.function_at(entry);
    for (const u64 target : fn.direct_callees) add(target);
    for (const u64 target : fn.tail_callees) add(target);
    for (const u64 target : fn.address_taken) add(target);
  }
  return {seen.begin(), seen.end()};
}

}  // namespace acs::verify
