// Security-class lattice for the static verifier.
//
// Every register and tracked stack slot carries one abstract class
// describing what kind of return-address material it holds. The classes
// order into a join semi-lattice by "how dangerous it is for this value to
// reach an unchecked return or attacker-writable memory"; join takes the
// more dangerous class so the analysis stays conservative at control-flow
// merges.
#pragma once

#include "common/types.h"

namespace acs::verify {

/// Abstract security class of a 64-bit value.
///
/// The declaration order IS the join order: join(a, b) = max(a, b).
enum class ValueClass : u8 {
  kOther = 0,   ///< ordinary data — no return-address material
  kAuthedRet,   ///< autia output: authenticated, safe to `ret` (tampering
                ///< yields a poisoned pointer that faults at the return)
  kRawRet,      ///< plaintext return address with trusted provenance (still
                ///< in-register since `bl`, or loaded from protected memory)
  kMaskedRet,   ///< PAC-masked chain value (aret XOR pacia(0, mod)) — safe
                ///< to spill; the mask hides the PAC bits (Listing 3)
  kMask,        ///< a bare PAC mask, pacia(0, mod) — secret; spilling or
                ///< keeping it live across calls leaks PACs (Section 5.2)
  kSignedRet,   ///< PAC-signed return value with the PAC in the clear —
                ///< spilling it opens the reuse attack (Listing 2 hazard)
  kTaintedRet,  ///< a return address that round-tripped attacker-writable
                ///< memory without authentication — must never reach `ret`
};

/// Least upper bound: the more dangerous class wins.
[[nodiscard]] constexpr ValueClass join(ValueClass a, ValueClass b) noexcept {
  return a < b ? b : a;
}

/// Human-readable class name for diagnostics.
[[nodiscard]] constexpr const char* class_name(ValueClass c) noexcept {
  switch (c) {
    case ValueClass::kOther: return "other";
    case ValueClass::kAuthedRet: return "authed-ret";
    case ValueClass::kRawRet: return "raw-ret";
    case ValueClass::kMaskedRet: return "masked-aret";
    case ValueClass::kMask: return "pac-mask";
    case ValueClass::kSignedRet: return "signed-ret";
    case ValueClass::kTaintedRet: return "tainted-ret";
  }
  return "?";
}

}  // namespace acs::verify
