// Event tracer: per-task ring buffers exported as Chrome trace-event JSON.
//
// One TraceSink serves one simulated machine (machines are sequential, so
// no locking). Each simulated task gets its own Track — a (pid, tid) pair
// with a ring buffer of typed events stamped with the task's simulated
// cycle counter. to_chrome_json() renders the whole sink in the Chrome
// trace-event format, so a trace file opens directly in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing.
#pragma once

#include <deque>
#include <string>

#include "obs/events.h"
#include "obs/ring.h"

namespace acs::obs {

class TraceSink {
 public:
  /// `sim_hz` converts cycle timestamps to trace microseconds;
  /// `ring_capacity` bounds each track's retained events.
  TraceSink(std::size_t ring_capacity, u64 sim_hz);

  class Track {
   public:
    Track(u64 pid, u64 tid, std::string name, std::size_t capacity)
        : pid_(pid), tid_(tid), name_(std::move(name)), ring_(capacity) {}

    void emit(EventKind kind, u64 ts, u64 a = 0, u64 b = 0,
              u32 dur = 0) noexcept {
      ring_.push(Event{ts, a, b, dur, kind});
    }

    [[nodiscard]] u64 pid() const noexcept { return pid_; }
    [[nodiscard]] u64 tid() const noexcept { return tid_; }
    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const RingBuffer<Event>& ring() const noexcept {
      return ring_;
    }

   private:
    u64 pid_;
    u64 tid_;
    std::string name_;
    RingBuffer<Event> ring_;
  };

  /// Create the track for a task. Pointers stay valid for the sink's
  /// lifetime (std::deque storage).
  Track* add_track(u64 pid, u64 tid, std::string name);

  [[nodiscard]] const std::deque<Track>& tracks() const noexcept {
    return tracks_;
  }

  /// Events overwritten by ring wrap, summed over all tracks.
  [[nodiscard]] u64 dropped() const noexcept;
  /// Events currently retained, summed over all tracks.
  [[nodiscard]] u64 size() const noexcept;

  /// Render as a Chrome trace-event JSON document (Perfetto-loadable).
  /// Deterministic: tracks in creation order, events oldest first.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::size_t ring_capacity_;
  u64 sim_hz_;
  std::deque<Track> tracks_;
};

}  // namespace acs::obs
