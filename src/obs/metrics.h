// Deterministic metrics registry: named counters and fixed-bucket
// histograms.
//
// Determinism contract (mirrors src/exec/parallel.h): all values are
// unsigned integers, shards are merged in a fixed order chosen by the
// caller (trial order, or exec::parallel_sharded's fixed-shape chunk
// tree), and iteration is over std::map — so serialised output is bitwise
// identical for any host thread count.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"

namespace acs::obs {

/// Fixed-bucket histogram of unsigned samples. Bucket `i` counts samples
/// with `value <= edges[i]` (first matching edge wins, Prometheus "le"
/// convention); the final implicit bucket counts everything above the last
/// edge. Edges are fixed at construction — merging requires equal edges.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<u64> edges);

  void observe(u64 value) noexcept;

  /// Throws std::invalid_argument if the edge vectors differ.
  void merge(const Histogram& other);

  [[nodiscard]] const std::vector<u64>& edges() const noexcept { return edges_; }
  /// counts().size() == edges().size() + 1 (the overflow bucket is last).
  [[nodiscard]] const std::vector<u64>& counts() const noexcept {
    return counts_;
  }
  [[nodiscard]] u64 total() const noexcept;

  [[nodiscard]] bool operator==(const Histogram&) const = default;

 private:
  std::vector<u64> edges_;
  std::vector<u64> counts_;
};

/// Power-of-two depth buckets shared by the call-depth and chain-depth
/// histograms.
[[nodiscard]] const std::vector<u64>& depth_edges();

/// A metrics shard: counters + histograms for one execution context (one
/// simulated machine, one Monte-Carlo trial). Not thread-safe — each
/// shard belongs to exactly one trial; cross-shard aggregation goes
/// through merge() in a fixed order.
class Metrics {
 public:
  void add(const std::string& name, u64 delta = 1);
  [[nodiscard]] u64 counter(const std::string& name) const noexcept;

  /// Find-or-create; an existing histogram keeps its original edges.
  Histogram& histogram(const std::string& name, const std::vector<u64>& edges);
  void observe(const std::string& name, const std::vector<u64>& edges,
               u64 value);

  /// Fold `other` into this shard, optionally prefixing every incoming
  /// name (used to decompose per-scheme metrics: "pacstack.pa.sign").
  void merge(const Metrics& other, const std::string& prefix = "");

  [[nodiscard]] const std::map<std::string, u64>& counters() const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms()
      const noexcept {
    return histograms_;
  }
  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && histograms_.empty();
  }

  /// Serialise as the `obs` section of the bench JSON schema
  /// (docs/bench-output.md): {"counters": {...}, "histograms": {...}}.
  /// `indent` spaces prefix every line; deterministic (map order).
  [[nodiscard]] std::string to_json(int indent = 0) const;

  [[nodiscard]] bool operator==(const Metrics&) const = default;

 private:
  std::map<std::string, u64> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace acs::obs
