#include "obs/trace.h"

#include <cstdio>

namespace acs::obs {

namespace {

[[nodiscard]] std::string hex(u64 value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%llx", (unsigned long long)value);
  return buf;
}

/// Cycle timestamp -> trace microseconds at the simulated clock. Three
/// fractional digits keep sub-microsecond events distinct at 1.2 GHz.
[[nodiscard]] std::string us(u64 cycles, u64 sim_hz) {
  const double micros =
      static_cast<double>(cycles) * 1e6 / static_cast<double>(sim_hz);
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", micros);
  return buf;
}

[[nodiscard]] const char* category(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kInstrRetire: return "sim";
    case EventKind::kPacSign:
    case EventKind::kPacAuthOk:
    case EventKind::kPacAuthFail:
    case EventKind::kPacGeneric:
    case EventKind::kPacStrip: return "pa";
    case EventKind::kChainPush:
    case EventKind::kChainPop:
    case EventKind::kChainMask: return "chain";
    case EventKind::kSyscall:
    case EventKind::kFault:
    case EventKind::kContextSwitch:
    case EventKind::kSignalDeliver: return "kernel";
    case EventKind::kFaultInjected: return "inject";
    case EventKind::kWorkerRestart:
    case EventKind::kBackoffWait:
    case EventKind::kMachineFork: return "fleet";
    case EventKind::kSpanBegin:
    case EventKind::kSpanEnd:
    case EventKind::kSpanInstant: return "request";
    case EventKind::kGauge: return "serving";
  }
  return "sim";
}

/// The "args" object for one event — what Perfetto shows when the event
/// is selected. Keys follow the taxonomy in docs/observability.md.
[[nodiscard]] std::string args_json(const Event& event) {
  switch (event.kind) {
    case EventKind::kInstrRetire:
      return "{\"pc\": \"" + hex(event.a) + "\", \"class\": \"" +
             instr_class_name(static_cast<InstrClass>(event.b)) + "\"}";
    case EventKind::kPacSign:
    case EventKind::kPacAuthOk:
    case EventKind::kPacAuthFail:
      return "{\"pc\": \"" + hex(event.a) + "\", \"modifier\": \"" +
             hex(event.b) + "\"}";
    case EventKind::kPacGeneric:
    case EventKind::kPacStrip:
    case EventKind::kChainPush:
    case EventKind::kChainMask:
      return "{\"pc\": \"" + hex(event.a) + "\"}";
    case EventKind::kChainPop:
      return "{\"pc\": \"" + hex(event.a) + "\", \"ok\": " +
             (event.b != 0 ? "true" : "false") + "}";
    case EventKind::kSyscall:
      return "{\"num\": " + std::to_string(event.a) + "}";
    case EventKind::kFault:
      return "{\"kind\": " + std::to_string(event.a) + ", \"addr\": \"" +
             hex(event.b) + "\"}";
    case EventKind::kContextSwitch:
      return "{}";
    case EventKind::kSignalDeliver:
      return "{\"signum\": " + std::to_string(event.a) + ", \"handler\": \"" +
             hex(event.b) + "\"}";
    case EventKind::kFaultInjected:
      return "{\"kind\": " + std::to_string(event.a) + ", \"payload\": \"" +
             hex(event.b) + "\"}";
    case EventKind::kWorkerRestart:
      return "{\"slot\": " + std::to_string(event.a) +
             ", \"attempt\": " + std::to_string(event.b) + "}";
    case EventKind::kBackoffWait:
      return "{\"cycles\": " + std::to_string(event.a) +
             ", \"attempt\": " + std::to_string(event.b) + "}";
    case EventKind::kSpanBegin:
    case EventKind::kSpanEnd:
    case EventKind::kSpanInstant:
      return "{\"request\": " + std::to_string(event.a) + "}";
    case EventKind::kMachineFork:
      return "{\"pid\": " + std::to_string(event.a) +
             ", \"pages_shared\": " + std::to_string(event.b) + "}";
    case EventKind::kGauge:
      return "{\"value\": " + std::to_string(event.a) + "}";
  }
  return "{}";
}

}  // namespace

TraceSink::TraceSink(std::size_t ring_capacity, u64 sim_hz)
    : ring_capacity_(ring_capacity), sim_hz_(sim_hz == 0 ? 1 : sim_hz) {}

TraceSink::Track* TraceSink::add_track(u64 pid, u64 tid, std::string name) {
  tracks_.emplace_back(pid, tid, std::move(name), ring_capacity_);
  return &tracks_.back();
}

u64 TraceSink::dropped() const noexcept {
  u64 total = 0;
  for (const auto& track : tracks_) total += track.ring().dropped();
  return total;
}

u64 TraceSink::size() const noexcept {
  u64 total = 0;
  for (const auto& track : tracks_) total += track.ring().size();
  return total;
}

std::string TraceSink::to_chrome_json() const {
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  const auto append = [&](const std::string& line) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "  " + line;
  };

  for (const auto& track : tracks_) {
    const std::string ids = "\"pid\": " + std::to_string(track.pid()) +
                            ", \"tid\": " + std::to_string(track.tid());
    // Track labels: Perfetto's metadata events name the process/thread rows.
    append("{\"name\": \"process_name\", \"ph\": \"M\", " + ids +
           ", \"args\": {\"name\": \"" + track.name() + "\"}}");
    append("{\"name\": \"thread_name\", \"ph\": \"M\", " + ids +
           ", \"args\": {\"name\": \"task " + std::to_string(track.tid()) +
           "\"}}");
    for (const Event& event : track.ring().snapshot()) {
      std::string line = "{\"name\": \"";
      // Span and gauge events are named by their stage / gauge rather than
      // the event kind: Perfetto groups async events by (cat, id, name) and
      // counter tracks by name.
      switch (event.kind) {
        case EventKind::kSpanBegin:
        case EventKind::kSpanEnd:
        case EventKind::kSpanInstant:
          line += span_name(static_cast<SpanName>(event.b));
          break;
        case EventKind::kGauge:
          line += gauge_name(static_cast<GaugeId>(event.b));
          break;
        default: line += event_name(event.kind); break;
      }
      line += "\", \"cat\": \"";
      line += category(event.kind);
      line += "\", ";
      switch (event.kind) {
        case EventKind::kSyscall:
          line += "\"ph\": \"X\", \"dur\": " + us(event.dur, sim_hz_) + ", ";
          break;
        // Async (nestable) request spans: one async track per request id,
        // lifecycle stages nest by timestamp within it.
        case EventKind::kSpanBegin:
          line += "\"ph\": \"b\", \"id\": \"" + hex(event.a) + "\", ";
          break;
        case EventKind::kSpanEnd:
          line += "\"ph\": \"e\", \"id\": \"" + hex(event.a) + "\", ";
          break;
        case EventKind::kSpanInstant:
          line += "\"ph\": \"n\", \"id\": \"" + hex(event.a) + "\", ";
          break;
        case EventKind::kGauge:
          line += "\"ph\": \"C\", ";
          break;
        default: line += "\"ph\": \"i\", \"s\": \"t\", "; break;
      }
      line += "\"ts\": " + us(event.ts, sim_hz_) + ", " + ids +
              ", \"args\": " + args_json(event) + "}";
      append(line);
    }
  }
  out += first ? "],\n" : "\n],\n";
  out += "\"displayTimeUnit\": \"ns\",\n";
  out += "\"otherData\": {\"dropped_events\": " + std::to_string(dropped()) +
         "}\n}\n";
  return out;
}

}  // namespace acs::obs
