#include "obs/metrics.h"

#include <stdexcept>

namespace acs::obs {

Histogram::Histogram(std::vector<u64> edges)
    : edges_(std::move(edges)), counts_(edges_.size() + 1, 0) {
  for (std::size_t i = 1; i < edges_.size(); ++i) {
    if (edges_[i] <= edges_[i - 1]) {
      throw std::invalid_argument{"Histogram: edges must strictly increase"};
    }
  }
}

void Histogram::observe(u64 value) noexcept {
  if (counts_.empty()) return;  // default-constructed: nothing to count into
  std::size_t bucket = edges_.size();  // overflow bucket
  for (std::size_t i = 0; i < edges_.size(); ++i) {
    if (value <= edges_[i]) {
      bucket = i;
      break;
    }
  }
  ++counts_[bucket];
}

void Histogram::merge(const Histogram& other) {
  if (other.counts_.empty()) return;
  if (counts_.empty()) {
    *this = other;
    return;
  }
  if (edges_ != other.edges_) {
    throw std::invalid_argument{"Histogram::merge: mismatched bucket edges"};
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
}

u64 Histogram::total() const noexcept {
  u64 sum = 0;
  for (const u64 c : counts_) sum += c;
  return sum;
}

const std::vector<u64>& depth_edges() {
  static const std::vector<u64> edges{1, 2, 4, 8, 16, 32, 64, 128, 256};
  return edges;
}

void Metrics::add(const std::string& name, u64 delta) {
  counters_[name] += delta;
}

u64 Metrics::counter(const std::string& name) const noexcept {
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

Histogram& Metrics::histogram(const std::string& name,
                              const std::vector<u64>& edges) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.emplace(name, Histogram{edges}).first->second;
}

void Metrics::observe(const std::string& name, const std::vector<u64>& edges,
                      u64 value) {
  histogram(name, edges).observe(value);
}

void Metrics::merge(const Metrics& other, const std::string& prefix) {
  for (const auto& [name, value] : other.counters_) {
    counters_[prefix + name] += value;
  }
  for (const auto& [name, hist] : other.histograms_) {
    const auto it = histograms_.find(prefix + name);
    if (it == histograms_.end()) {
      histograms_.emplace(prefix + name, hist);
    } else {
      it->second.merge(hist);
    }
  }
}

namespace {

/// Counter/histogram names are code-controlled identifiers, but escape the
/// JSON-special characters anyway so hand-built names can never corrupt a
/// trajectory file.
[[nodiscard]] std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';  // control characters have no business in a metric name
    } else {
      out += c;
    }
  }
  return out;
}

[[nodiscard]] std::string list_json(const std::vector<u64>& values) {
  std::string out = "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) out += ", ";
    out += std::to_string(values[i]);
  }
  out += "]";
  return out;
}

}  // namespace

std::string Metrics::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";
  out += pad + "  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "    \"" + escape(name) + "\": " + std::to_string(value);
  }
  out += counters_.empty() ? "},\n" : "\n" + pad + "  },\n";
  out += pad + "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += pad + "    \"" + escape(name) + "\": {\"edges\": " +
           list_json(hist.edges()) + ", \"counts\": " +
           list_json(hist.counts()) + "}";
  }
  out += histograms_.empty() ? "}\n" : "\n" + pad + "  }\n";
  out += pad + "}";
  return out;
}

}  // namespace acs::obs
