// Log-bucketed latency histogram (HdrHistogram-style).
//
// `LogHistogram` records unsigned 64-bit samples — simulated-cycle
// latencies — into base-2 exponential buckets, each power of two split
// into 2^sub_bits linear sub-buckets. Values below 2^sub_bits are exact;
// above that the relative quantisation error is bounded by 2^-sub_bits
// (~3% at the default sub_bits = 5). The bucket layout is a pure function
// of sub_bits, so two histograms with the same resolution always merge by
// element-wise addition: merge is associative, commutative, and bitwise
// deterministic — exactly what the fixed-order fold trees in
// `src/exec/parallel.h` need.
//
// Quantile extraction is integer-only (no floating point anywhere in the
// recording or query path), so p50/p90/p99/p999 trajectories are bitwise
// identical across --threads values and across hosts.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace acs::obs {

class LogHistogram {
 public:
  /// `sub_bits` picks the resolution: 2^sub_bits sub-buckets per power of
  /// two. The bucket array is fully allocated up front (covers all of
  /// u64), so observe() never allocates.
  explicit LogHistogram(unsigned sub_bits = kDefaultSubBits);

  static constexpr unsigned kDefaultSubBits = 5;  ///< <= 3.2% rel. error

  void observe(u64 value) noexcept;

  /// Element-wise addition. Both histograms must have the same sub_bits
  /// (asserted); the result is independent of merge order.
  void merge(const LogHistogram& other) noexcept;

  /// Value at quantile `numerator / denominator` (e.g. 999/1000 for p999):
  /// the upper bound of the bucket holding the sample with rank
  /// ceil(q * count). Returns 0 for an empty histogram. Integer-only.
  [[nodiscard]] u64 quantile(u64 numerator, u64 denominator) const noexcept;

  [[nodiscard]] u64 p50() const noexcept { return quantile(50, 100); }
  [[nodiscard]] u64 p90() const noexcept { return quantile(90, 100); }
  [[nodiscard]] u64 p99() const noexcept { return quantile(99, 100); }
  [[nodiscard]] u64 p999() const noexcept { return quantile(999, 1000); }

  [[nodiscard]] u64 count() const noexcept { return count_; }
  [[nodiscard]] u64 sum() const noexcept { return sum_; }
  [[nodiscard]] u64 min() const noexcept { return count_ == 0 ? 0 : min_; }
  [[nodiscard]] u64 max() const noexcept { return max_; }
  [[nodiscard]] unsigned sub_bits() const noexcept { return sub_bits_; }

  /// Bucket index for `value` — exposed for tests pinning the layout.
  [[nodiscard]] std::size_t bucket_index(u64 value) const noexcept;

  /// Largest value mapping to bucket `index` (what quantile() reports).
  [[nodiscard]] u64 bucket_upper_bound(std::size_t index) const noexcept;

  [[nodiscard]] const std::vector<u64>& counts() const noexcept {
    return counts_;
  }

 private:
  unsigned sub_bits_;
  u64 count_ = 0;
  u64 sum_ = 0;
  u64 min_ = ~u64{0};
  u64 max_ = 0;
  std::vector<u64> counts_;
};

}  // namespace acs::obs
