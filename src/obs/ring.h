// Fixed-capacity ring buffer for per-task event streams.
//
// The tracer must never let a long run grow without bound: each task's
// event stream is a ring that keeps the most recent `capacity` entries and
// counts what it overwrote. push() is O(1) with no allocation after
// construction — the hot path of an attached tracer.
#pragma once

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace acs::obs {

template <typename T>
class RingBuffer {
 public:
  /// A zero capacity is legal and records nothing (every push is dropped).
  explicit RingBuffer(std::size_t capacity) : buffer_(capacity) {}

  void push(const T& value) noexcept {
    ++pushed_;
    if (buffer_.empty()) return;
    buffer_[next_] = value;
    next_ = (next_ + 1) % buffer_.size();
    if (next_ == 0) wrapped_ = true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return buffer_.size(); }
  [[nodiscard]] std::size_t size() const noexcept {
    return wrapped_ ? buffer_.size() : next_;
  }
  /// Total pushes since construction (kept + overwritten).
  [[nodiscard]] u64 pushed() const noexcept { return pushed_; }
  /// Entries lost to wrapping (or to zero capacity).
  [[nodiscard]] u64 dropped() const noexcept { return pushed_ - size(); }

  /// The retained entries, oldest first.
  [[nodiscard]] std::vector<T> snapshot() const {
    std::vector<T> out;
    out.reserve(size());
    if (wrapped_) {
      out.insert(out.end(), buffer_.begin() + static_cast<std::ptrdiff_t>(next_),
                 buffer_.end());
    }
    out.insert(out.end(), buffer_.begin(),
               buffer_.begin() + static_cast<std::ptrdiff_t>(next_));
    return out;
  }

 private:
  std::vector<T> buffer_;
  std::size_t next_ = 0;
  bool wrapped_ = false;
  u64 pushed_ = 0;
};

}  // namespace acs::obs
