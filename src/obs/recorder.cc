#include "obs/recorder.h"

namespace acs::obs {

Recorder::Recorder(RecorderConfig config)
    : config_(std::move(config)),
      trace_(config_.ring_capacity, config_.sim_hz) {}

void Recorder::set_functions(
    std::vector<std::pair<u64, std::string>> entries) {
  // Already-attached TaskProfiles hold a raw pointer into *functions_, so
  // the table must be updated in place, never reallocated — a serving /
  // fleet recorder sees one set_functions per CoW machine fork (all forks
  // of one master carry the same symbols).
  if (functions_ == nullptr) {
    functions_ = std::make_unique<FunctionTable>(std::move(entries));
  } else {
    *functions_ = FunctionTable(std::move(entries));
  }
}

TaskChannel* Recorder::attach(u64 pid, u64 tid, std::string name) {
  TaskChannel& channel = channels_.emplace_back();
  if (config_.metrics) {
    channel.counters_ = &counters_.emplace_back();
  }
  if (config_.trace) {
    channel.track_ = trace_.add_track(
        pid, tid, config_.process_label + "/" + std::move(name));
    channel.trace_instr_retire_ = config_.trace_instr_retire;
  }
  if (config_.profile) {
    if (functions_ == nullptr) {
      functions_ = std::make_unique<FunctionTable>(
          std::vector<std::pair<u64, std::string>>{});
    }
    channel.profile_ = &profiles_.emplace_back(functions_.get());
  }
  return &channel;
}

Metrics Recorder::metrics() const {
  Metrics out;
  for (const TaskCounters& c : counters_) {
    for (std::size_t i = 0; i < kNumInstrClasses; ++i) {
      out.add(std::string("sim.instr.") +
                  instr_class_name(static_cast<InstrClass>(i)),
              c.instr[i]);
    }
    out.add("sim.cycles", c.cycles);
    out.add("pa.sign", c.pac_sign);
    out.add("pa.auth.ok", c.pac_auth_ok);
    out.add("pa.auth.fail", c.pac_auth_fail);
    out.add("pa.generic", c.pac_generic);
    out.add("pa.strip", c.pac_strip);
    out.add("chain.push", c.chain_push);
    out.add("chain.pop.ok", c.chain_pop_ok);
    out.add("chain.pop.fail", c.chain_pop_fail);
    out.add("chain.mask", c.chain_mask);
    out.add("kernel.syscall", c.syscalls);
    out.add("kernel.ctx_switch", c.ctx_switches);
    out.add("kernel.fault", c.faults);
    out.add("kernel.signal", c.signals);
    out.add("inject.fault", c.faults_injected);
    out.add("fleet.worker.restart", c.worker_restarts);
    out.add("fleet.backoff.wait", c.backoff_waits);
    out.add("fleet.backoff.cycles", c.backoff_cycles);
    out.add("fleet.fork", c.forks);
    out.add("fleet.cow_pages_copied", c.cow_pages_copied);
    out.add("obs.span.begin", c.span_begins);
    out.add("obs.span.instant", c.span_instants);
    out.add("obs.gauge.sample", c.gauge_samples);
    out.histogram("sim.call.depth", depth_edges()).merge(c.call_depth);
    out.histogram("chain.depth", depth_edges()).merge(c.chain_depth);
  }
  if (config_.trace) {
    out.add("obs.trace.dropped", trace_.dropped());
  }
  return out;
}

FoldedProfile Recorder::profile() const {
  FoldedProfile out;
  for (const TaskProfile& p : profiles_) {
    p.fold_into(out);
  }
  return out;
}

}  // namespace acs::obs
