// Cycle-attribution profiles: folded call stacks over the cycle model.
//
// The profiler maintains a shadow call stack per task, driven by the CPU's
// retire hook: a retired call pushes the callee, a retired return pops,
// and every retired instruction's cycle cost is attributed to the current
// stack. The result is the classic folded-stack ("flamegraph") format —
// one line per unique stack, `root;child;leaf <cycles>` — which
// flamegraph.pl and Speedscope consume directly, and which diffs cleanly
// between schemes (prefix each scheme's stacks with its name and the
// pacstack-vs-baseline overhead decomposes by call site).
//
// Control transfers the shadow stack cannot follow (kernel-assisted
// unwinds: throw, sigreturn) resync it to the landing function; the
// attribution stays deterministic, merely flatter around those points.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "obs/events.h"

namespace acs::obs {

/// Sorted (entry address, name) table mapping a PC to its function. Built
/// once per program by whoever attaches the Recorder (the kernel machine
/// knows the symbol table; obs does not read ISA headers).
class FunctionTable {
 public:
  explicit FunctionTable(std::vector<std::pair<u64, std::string>> entries);

  /// Index into names() of the function containing `pc` (the last entry at
  /// or below it); index 0 is the "<unknown>" sentinel for PCs before the
  /// first entry.
  [[nodiscard]] u32 id_for(u64 pc) const noexcept;
  [[nodiscard]] const std::string& name(u32 id) const noexcept {
    return names_[id];
  }
  [[nodiscard]] std::size_t size() const noexcept { return names_.size(); }

 private:
  std::vector<u64> entries_;        // ascending; parallel to names_[1..]
  std::vector<std::string> names_;  // names_[0] = "<unknown>"
};

/// Merged folded-stack profile: unique stack -> attributed cycles.
class FoldedProfile {
 public:
  void add(const std::string& stack, u64 cycles);
  /// Sum `other` in, optionally pushing a synthetic root frame in front of
  /// every stack (e.g. the scheme name).
  void merge(const FoldedProfile& other, const std::string& root = "");

  [[nodiscard]] const std::map<std::string, u64>& stacks() const noexcept {
    return stacks_;
  }
  [[nodiscard]] bool empty() const noexcept { return stacks_.empty(); }
  [[nodiscard]] u64 total_cycles() const noexcept;

  /// One `stack cycles` line per entry, sorted by stack (map order) —
  /// deterministic, flamegraph.pl-compatible.
  [[nodiscard]] std::string folded() const;

  [[nodiscard]] bool operator==(const FoldedProfile&) const = default;

 private:
  std::map<std::string, u64> stacks_;
};

/// Per-task attribution state. Hot path: one map-iterator bump per retired
/// instruction; the map only grows on call/return/resync.
class TaskProfile {
 public:
  explicit TaskProfile(const FunctionTable* functions)
      : functions_(functions) {}

  /// Driven by the retire hook. `pc` is the retired instruction, `next_pc`
  /// the PC after it (the callee entry when `ctl` is kCall).
  void retire(u64 pc, u64 next_pc, u64 cost, CtlFlow ctl);

  /// A kernel-assisted transfer landed at `pc`: reset the shadow stack.
  void resync(u64 pc);

  [[nodiscard]] std::size_t depth() const noexcept { return stack_.size(); }

  /// Resolve ids to names and fold into `out` (summing duplicate stacks).
  void fold_into(FoldedProfile& out) const;

 private:
  void reset_cursor();

  const FunctionTable* functions_;
  std::vector<u32> stack_;
  std::map<std::vector<u32>, u64> cycles_;
  std::map<std::vector<u32>, u64>::iterator cursor_{};
  bool cursor_valid_ = false;
};

}  // namespace acs::obs
