#include "obs/profile.h"

#include <algorithm>

namespace acs::obs {

FunctionTable::FunctionTable(
    std::vector<std::pair<u64, std::string>> entries) {
  std::sort(entries.begin(), entries.end());
  names_.reserve(entries.size() + 1);
  names_.emplace_back("<unknown>");
  entries_.reserve(entries.size());
  for (auto& [addr, name] : entries) {
    entries_.push_back(addr);
    names_.push_back(std::move(name));
  }
}

u32 FunctionTable::id_for(u64 pc) const noexcept {
  // First entry strictly greater than pc; the one before it contains pc.
  const auto it = std::upper_bound(entries_.begin(), entries_.end(), pc);
  return static_cast<u32>(it - entries_.begin());  // 0 = before everything
}

void FoldedProfile::add(const std::string& stack, u64 cycles) {
  stacks_[stack] += cycles;
}

void FoldedProfile::merge(const FoldedProfile& other, const std::string& root) {
  for (const auto& [stack, cycles] : other.stacks_) {
    if (root.empty()) {
      stacks_[stack] += cycles;
    } else {
      stacks_[root + ";" + stack] += cycles;
    }
  }
}

u64 FoldedProfile::total_cycles() const noexcept {
  u64 total = 0;
  for (const auto& [stack, cycles] : stacks_) total += cycles;
  return total;
}

std::string FoldedProfile::folded() const {
  std::string out;
  for (const auto& [stack, cycles] : stacks_) {
    out += stack;
    out += ' ';
    out += std::to_string(cycles);
    out += '\n';
  }
  return out;
}

void TaskProfile::reset_cursor() {
  cursor_ = cycles_.try_emplace(stack_, 0).first;
  cursor_valid_ = true;
}

void TaskProfile::retire(u64 pc, u64 next_pc, u64 cost, CtlFlow ctl) {
  if (stack_.empty()) {
    // First retirement (or post-resync): root the stack at the current
    // function.
    stack_.push_back(functions_->id_for(pc));
    reset_cursor();
  } else if (!cursor_valid_) {
    reset_cursor();
  }
  cursor_->second += cost;

  if (ctl == CtlFlow::kCall) {
    stack_.push_back(functions_->id_for(next_pc));
    reset_cursor();
  } else if (ctl == CtlFlow::kReturn && stack_.size() > 1) {
    stack_.pop_back();
    reset_cursor();
  }
}

void TaskProfile::resync(u64 pc) {
  stack_.clear();
  stack_.push_back(functions_->id_for(pc));
  reset_cursor();
}

void TaskProfile::fold_into(FoldedProfile& out) const {
  for (const auto& [stack, cycles] : cycles_) {
    if (cycles == 0) continue;
    std::string key;
    for (std::size_t i = 0; i < stack.size(); ++i) {
      if (i != 0) key += ';';
      key += functions_->name(stack[i]);
    }
    out.add(key, cycles);
  }
}

}  // namespace acs::obs
