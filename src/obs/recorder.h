// Recorder: the single attachment point the sim/kernel layers see.
//
// A Recorder owns the three sinks of the observability layer — trace ring
// buffers, metrics shard, folded profiles — for ONE simulated machine.
// For each task it hands out a TaskChannel, a thin fan-out object whose
// methods update plain per-task counters, the task's trace track, and its
// profile state. The sim CPU and the kernel hold a `TaskChannel*` that is
// nullptr by default: with no recorder attached, every hook in the hot
// path is a single never-taken branch on that pointer.
//
// Parallel campaigns give every Monte-Carlo trial its own Recorder and
// merge the extracted Metrics / FoldedProfile shards in fixed trial order
// (or through exec::parallel_sharded's fixed-shape chunk tree), keeping
// aggregate observability output bitwise identical for any --threads.
#pragma once

#include <array>
#include <deque>
#include <memory>
#include <string>

#include "obs/events.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace acs::obs {

struct RecorderConfig {
  bool metrics = true;   ///< count events into the metrics shard
  bool trace = false;    ///< record events into per-task ring buffers
  bool profile = false;  ///< maintain folded-stack cycle attribution
  /// Also ring-record one kInstrRetire event per retired instruction.
  /// Off by default: retire *counters* are always kept, but flooding the
  /// ring with per-instruction events would evict the interesting ones.
  bool trace_instr_retire = false;
  std::size_t ring_capacity = 1 << 15;  ///< events retained per task
  u64 sim_hz = 1'200'000'000;           ///< cycle->microsecond conversion
  std::string process_label = "sim";    ///< trace process_name prefix
};

/// Plain per-task event counters — bumped directly by the hooks (no map
/// lookup on the hot path) and folded into named Metrics on demand.
struct TaskCounters {
  std::array<u64, kNumInstrClasses> instr{};
  u64 cycles = 0;
  u64 pac_sign = 0, pac_auth_ok = 0, pac_auth_fail = 0;
  u64 pac_generic = 0, pac_strip = 0;
  u64 chain_push = 0, chain_pop_ok = 0, chain_pop_fail = 0, chain_mask = 0;
  u64 syscalls = 0, ctx_switches = 0, faults = 0, signals = 0;
  u64 faults_injected = 0, worker_restarts = 0, backoff_waits = 0;
  u64 backoff_cycles = 0;
  u64 span_begins = 0, span_instants = 0;
  u64 forks = 0, cow_pages_copied = 0, gauge_samples = 0;
  Histogram call_depth{depth_edges()};
  Histogram chain_depth{depth_edges()};
};

class Recorder;

/// Per-task hook endpoint. All methods are cheap and non-virtual; any of
/// the three sink pointers may be null (disabled dimension).
class TaskChannel {
 public:
  /// The CPU's retire hook: one call per architecturally retired
  /// instruction. `next_pc` is the post-instruction PC (the callee entry
  /// for calls); `ts` the task's cycle counter after charging `cost`.
  void retire(InstrClass cls, u64 pc, u64 next_pc, u64 cost, u64 ts,
              CtlFlow ctl) {
    if (counters_ != nullptr) {
      ++counters_->instr[static_cast<std::size_t>(cls)];
      counters_->cycles += cost;
    }
    if (ctl == CtlFlow::kCall) {
      ++depth_;
      if (counters_ != nullptr) counters_->call_depth.observe(depth_);
    } else if (ctl == CtlFlow::kReturn && depth_ > 0) {
      --depth_;
    }
    if (profile_ != nullptr) profile_->retire(pc, next_pc, cost, ctl);
    if (track_ != nullptr && trace_instr_retire_) {
      track_->emit(EventKind::kInstrRetire, ts, pc, static_cast<u64>(cls));
    }
  }

  /// `chain` flags a PA op whose modifier is the chain register (a
  /// PACStack chain update); `mask` flags the scratch-register mask
  /// recomputation of Section 4.2.
  void pac_sign(u64 pc, u64 modifier, bool chain, bool mask, u64 ts) {
    if (counters_ != nullptr) {
      ++counters_->pac_sign;
      if (chain) ++(mask ? counters_->chain_mask : counters_->chain_push);
    }
    if (track_ != nullptr) {
      track_->emit(EventKind::kPacSign, ts, pc, modifier);
      if (chain) {
        track_->emit(mask ? EventKind::kChainMask : EventKind::kChainPush, ts,
                     pc);
      }
    }
  }

  void pac_auth(u64 pc, u64 modifier, bool ok, bool chain, u64 ts) {
    if (counters_ != nullptr) {
      ++(ok ? counters_->pac_auth_ok : counters_->pac_auth_fail);
      if (chain) ++(ok ? counters_->chain_pop_ok : counters_->chain_pop_fail);
    }
    if (track_ != nullptr) {
      track_->emit(ok ? EventKind::kPacAuthOk : EventKind::kPacAuthFail, ts,
                   pc, modifier);
      if (chain) track_->emit(EventKind::kChainPop, ts, pc, ok ? 1 : 0);
    }
  }

  void pac_generic(u64 pc, u64 ts) {
    if (counters_ != nullptr) ++counters_->pac_generic;
    if (track_ != nullptr) track_->emit(EventKind::kPacGeneric, ts, pc);
  }

  void pac_strip(u64 pc, u64 ts) {
    if (counters_ != nullptr) ++counters_->pac_strip;
    if (track_ != nullptr) track_->emit(EventKind::kPacStrip, ts, pc);
  }

  /// Crypto-level chain hooks (core::AcsChain). `depth` is the chain depth
  /// after the operation; rings stamp these with a per-channel sequence
  /// number since the crypto model has no cycle clock.
  void chain_push(u64 depth) {
    if (counters_ != nullptr) {
      ++counters_->chain_push;
      counters_->chain_depth.observe(depth);
    }
    if (track_ != nullptr) track_->emit(EventKind::kChainPush, ++seq_, depth);
  }

  void chain_pop(bool ok, u64 depth) {
    if (counters_ != nullptr) {
      ++(ok ? counters_->chain_pop_ok : counters_->chain_pop_fail);
    }
    if (track_ != nullptr) {
      track_->emit(EventKind::kChainPop, ++seq_, depth, ok ? 1 : 0);
    }
  }

  void chain_mask() {
    if (counters_ != nullptr) ++counters_->chain_mask;
    if (track_ != nullptr) track_->emit(EventKind::kChainMask, ++seq_);
  }

  /// Kernel hooks. The syscall span covers [enter_ts, exit_ts] in the
  /// task's cycle clock (the svc cost charged by the cycle model).
  void syscall(u64 num, u64 enter_ts, u64 exit_ts) {
    if (counters_ != nullptr) ++counters_->syscalls;
    if (track_ != nullptr) {
      track_->emit(EventKind::kSyscall, enter_ts, num, 0,
                   static_cast<u32>(exit_ts - enter_ts));
    }
  }

  void fault(u64 kind, u64 addr, u64 ts) {
    if (counters_ != nullptr) ++counters_->faults;
    if (track_ != nullptr) track_->emit(EventKind::kFault, ts, kind, addr);
  }

  void context_switch(u64 ts) {
    if (counters_ != nullptr) ++counters_->ctx_switches;
    if (track_ != nullptr) track_->emit(EventKind::kContextSwitch, ts);
  }

  /// A planned fault was delivered to this task's execution (src/inject).
  /// `kind` is the inject::FaultKind as an integer, `payload` the planned
  /// fault's payload word.
  void fault_injected(u64 kind, u64 payload, u64 ts) {
    if (counters_ != nullptr) ++counters_->faults_injected;
    if (track_ != nullptr) {
      track_->emit(EventKind::kFaultInjected, ts, kind, payload);
    }
  }

  /// Supervisor hooks (src/workload fleet): a crashed worker slot was
  /// restarted / the supervisor charged backoff cycles before the restart.
  void worker_restart(u64 slot, u64 attempt, u64 ts) {
    if (counters_ != nullptr) ++counters_->worker_restarts;
    if (track_ != nullptr) {
      track_->emit(EventKind::kWorkerRestart, ts, slot, attempt);
    }
  }

  void backoff_wait(u64 cycles, u64 attempt, u64 ts) {
    if (counters_ != nullptr) {
      ++counters_->backoff_waits;
      counters_->backoff_cycles += cycles;
    }
    if (track_ != nullptr) {
      track_->emit(EventKind::kBackoffWait, ts, cycles, attempt);
    }
  }

  /// Request-lifecycle spans (docs/observability.md "Spans"). `request` is
  /// the propagated request id — it becomes the Perfetto async-event id, so
  /// every span a lifecycle emits with the same id lands on one async
  /// track. Ranged stages use begin/end; markers use span_instant.
  void span_begin(SpanName name, u64 request, u64 ts) {
    if (counters_ != nullptr) ++counters_->span_begins;
    if (track_ != nullptr) {
      track_->emit(EventKind::kSpanBegin, ts, request,
                   static_cast<u64>(name));
    }
  }

  void span_end(SpanName name, u64 request, u64 ts) {
    if (track_ != nullptr) {
      track_->emit(EventKind::kSpanEnd, ts, request, static_cast<u64>(name));
    }
  }

  void span_instant(SpanName name, u64 request, u64 ts) {
    if (counters_ != nullptr) ++counters_->span_instants;
    if (track_ != nullptr) {
      track_->emit(EventKind::kSpanInstant, ts, request,
                   static_cast<u64>(name));
    }
  }

  /// A CoW machine was forked from a master image (kernel::Machine's fork
  /// constructor). `pages_shared` is the page count the child starts out
  /// sharing with the master.
  void machine_fork(u64 child_pid, u64 pages_shared, u64 ts) {
    if (counters_ != nullptr) ++counters_->forks;
    if (track_ != nullptr) {
      track_->emit(EventKind::kMachineFork, ts, child_pid, pages_shared);
    }
  }

  /// Pages a finished fork generation privatised before it was torn down
  /// (AddressSpace::private_pages at end of run). Counter only.
  void cow_pages(u64 pages_copied) {
    if (counters_ != nullptr) counters_->cow_pages_copied += pages_copied;
  }

  /// Fixed-cadence gauge sample (queue depth, in-flight requests).
  void gauge(GaugeId id, u64 value, u64 ts) {
    if (counters_ != nullptr) ++counters_->gauge_samples;
    if (track_ != nullptr) {
      track_->emit(EventKind::kGauge, ts, value, static_cast<u64>(id));
    }
  }

  void signal_deliver(u64 signum, u64 handler, u64 ts) {
    if (counters_ != nullptr) ++counters_->signals;
    if (track_ != nullptr) {
      track_->emit(EventKind::kSignalDeliver, ts, signum, handler);
    }
    // The handler runs like a call with a synthetic return; mirror that on
    // the profiler stack so handler cycles attribute under the handler.
    if (profile_ != nullptr) {
      profile_->retire(handler, handler, 0, CtlFlow::kCall);
    }
    ++depth_;
  }

  /// A kernel-assisted transfer (throw / sigreturn / longjmp) moved the PC
  /// outside normal call/return discipline.
  void resync(u64 pc) {
    if (profile_ != nullptr) profile_->resync(pc);
    depth_ = 0;
  }

 private:
  friend class Recorder;
  TraceSink::Track* track_ = nullptr;
  TaskCounters* counters_ = nullptr;
  TaskProfile* profile_ = nullptr;
  bool trace_instr_retire_ = false;
  u64 depth_ = 0;  ///< shadow call depth for the call-depth histogram
  u64 seq_ = 0;    ///< timestamp source for clock-less (crypto-level) hooks
};

class Recorder {
 public:
  explicit Recorder(RecorderConfig config = {});

  /// Function table for profile symbolisation (the kernel machine passes
  /// its program's function symbols). May be called again by later machine
  /// forks attaching to the same recorder — the table is updated in place,
  /// so channels attached earlier keep symbolising.
  void set_functions(std::vector<std::pair<u64, std::string>> entries);

  /// Create the channel for task (pid, tid). Pointers stay valid for the
  /// Recorder's lifetime. Channels are created in attach order, which is
  /// the deterministic fold order for metrics() and profile().
  TaskChannel* attach(u64 pid, u64 tid, std::string name);

  [[nodiscard]] const RecorderConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const TraceSink& trace() const noexcept { return trace_; }

  /// Fold every task's counters into one named-metric shard. Adds
  /// `obs.trace.dropped` when tracing dropped events to ring wrap.
  [[nodiscard]] Metrics metrics() const;

  /// Merge every task's folded stacks (attach order).
  [[nodiscard]] FoldedProfile profile() const;

 private:
  RecorderConfig config_;
  std::unique_ptr<FunctionTable> functions_;
  TraceSink trace_;
  std::deque<TaskCounters> counters_;
  std::deque<TaskProfile> profiles_;
  std::deque<TaskChannel> channels_;
};

}  // namespace acs::obs
