#include "obs/loghist.h"

#include <bit>
#include <cassert>

namespace acs::obs {

namespace {

/// Total bucket count for a given resolution: 2^sub exact buckets for
/// values < 2^sub, then one octave of 2^sub sub-buckets per remaining
/// power of two up to 2^63.
[[nodiscard]] constexpr std::size_t total_buckets(unsigned sub_bits) {
  return static_cast<std::size_t>(65 - sub_bits) << sub_bits;
}

}  // namespace

LogHistogram::LogHistogram(unsigned sub_bits)
    : sub_bits_(sub_bits), counts_(total_buckets(sub_bits), 0) {
  assert(sub_bits >= 1 && sub_bits <= 12 &&
         "LogHistogram: sub_bits outside sane resolution range");
}

std::size_t LogHistogram::bucket_index(u64 value) const noexcept {
  const u64 sub = u64{1} << sub_bits_;
  if (value < sub) return static_cast<std::size_t>(value);
  // msb >= sub_bits; the top sub_bits+1 bits of the value select the
  // octave and the sub-bucket within it.
  const unsigned msb = 63U - static_cast<unsigned>(std::countl_zero(value));
  const unsigned shift = msb - sub_bits_;
  const u64 sub_bucket = (value >> shift) & (sub - 1);
  return static_cast<std::size_t>(
      (static_cast<u64>(shift + 1) << sub_bits_) + sub_bucket);
}

u64 LogHistogram::bucket_upper_bound(std::size_t index) const noexcept {
  const u64 sub = u64{1} << sub_bits_;
  if (index < sub) return static_cast<u64>(index);
  const unsigned shift =
      static_cast<unsigned>(index >> sub_bits_) - 1U;  // octave
  const u64 sub_bucket = static_cast<u64>(index) & (sub - 1);
  const u64 low = (sub + sub_bucket) << shift;
  return low + ((u64{1} << shift) - 1);
}

void LogHistogram::observe(u64 value) noexcept {
  ++counts_[bucket_index(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void LogHistogram::merge(const LogHistogram& other) noexcept {
  assert(sub_bits_ == other.sub_bits_ &&
         "LogHistogram::merge: resolution mismatch");
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

u64 LogHistogram::quantile(u64 numerator, u64 denominator) const noexcept {
  assert(denominator != 0 && numerator <= denominator);
  if (count_ == 0) return 0;
  // Rank of the quantile sample, 1-based: ceil(q * count), clamped to >= 1
  // so p0 still returns the smallest recorded bucket.
  u64 rank = (count_ * numerator + denominator - 1) / denominator;
  if (rank == 0) rank = 1;
  u64 seen = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (seen >= rank) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(counts_.size() - 1);
}

}  // namespace acs::obs
