// Typed observability events (the `src/obs` event taxonomy).
//
// Every event a hook can emit is one of these kinds; docs/observability.md
// documents the taxonomy and the argument conventions per kind. The enum is
// deliberately closed and small: the trace ring stores events as POD, and
// the Chrome-trace exporter switches over the kind to pick phase/category.
//
// obs depends only on `common` — the sim/kernel layers translate their own
// vocabulary (opcodes, fault kinds, syscall numbers) into these neutral
// kinds, so the observability layer never needs to see an ISA header.
#pragma once

#include "common/types.h"

namespace acs::obs {

enum class EventKind : u8 {
  kInstrRetire = 0,  ///< a = pc, b = instruction class (InstrClass)
  kPacSign,          ///< a = pc, b = modifier value
  kPacAuthOk,        ///< a = pc, b = modifier value
  kPacAuthFail,      ///< a = pc, b = modifier value
  kPacGeneric,       ///< pacga: a = pc
  kPacStrip,         ///< xpac: a = pc
  kChainPush,        ///< a = pc (CPU level) or chain depth (crypto level)
  kChainPop,         ///< a = pc or depth, b = 1 if the link verified
  kChainMask,        ///< a = pc (mask recomputation, Section 4.2)
  kSyscall,          ///< complete span; a = syscall number
  kFault,            ///< a = fault kind, b = faulting address
  kContextSwitch,    ///< this track was scheduled onto the hart
  kSignalDeliver,    ///< a = signal number, b = handler address
  kFaultInjected,    ///< a = inject::FaultKind, b = fault payload
  kWorkerRestart,    ///< a = worker slot, b = restart attempt number
  kBackoffWait,      ///< a = simulated cycles waited, b = restart attempt
  kSpanBegin,        ///< async span open; a = request id, b = SpanName
  kSpanEnd,          ///< async span close; a = request id, b = SpanName
  kSpanInstant,      ///< async instant; a = request id, b = SpanName
  kMachineFork,      ///< a = child pid, b = CoW pages shared at fork
  kGauge,            ///< a = sampled value, b = GaugeId
};

inline constexpr std::size_t kNumEventKinds = 21;

/// Stable lowercase name used in trace output and documentation.
[[nodiscard]] constexpr const char* event_name(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kInstrRetire: return "instr_retire";
    case EventKind::kPacSign: return "pac_sign";
    case EventKind::kPacAuthOk: return "pac_auth_ok";
    case EventKind::kPacAuthFail: return "pac_auth_fail";
    case EventKind::kPacGeneric: return "pac_generic";
    case EventKind::kPacStrip: return "pac_strip";
    case EventKind::kChainPush: return "chain_push";
    case EventKind::kChainPop: return "chain_pop";
    case EventKind::kChainMask: return "chain_mask";
    case EventKind::kSyscall: return "syscall";
    case EventKind::kFault: return "fault";
    case EventKind::kContextSwitch: return "context_switch";
    case EventKind::kSignalDeliver: return "signal_deliver";
    case EventKind::kFaultInjected: return "fault_injected";
    case EventKind::kWorkerRestart: return "worker_restart";
    case EventKind::kBackoffWait: return "backoff_wait";
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kSpanInstant: return "span_instant";
    case EventKind::kMachineFork: return "machine-fork";
    case EventKind::kGauge: return "gauge";
  }
  return "unknown";
}

/// Request-lifecycle span and marker names (the serving fleet's stages).
/// The first four open/close ranged spans; the rest are instant markers.
/// All spans carrying the same request id form one Perfetto async track,
/// so a request's whole lifecycle reads as one nested timeline.
enum class SpanName : u8 {
  kRequest = 0,  ///< admission to completion (the whole lifecycle)
  kQueued,       ///< admitted, waiting for a free worker slot
  kExecuting,    ///< one machine attempt is running the request
  kBackoff,      ///< supervisor backoff between crash and restart
  kAdmitted,     ///< instant: passed admission control
  kRejected,     ///< instant: dropped by backpressure (queue full)
  kForked,       ///< instant: a CoW machine was forked for an attempt
  kCompleted,    ///< instant: request finished successfully
  kCrashed,      ///< instant: the executing attempt died
  kRestarted,    ///< instant: supervisor launched the next attempt
  // Multi-tier topology stages (src/workload/topology.h).
  kTier,          ///< ranged: one tier's share of a request's lifecycle
  kShed,          ///< instant: dropped by priority load shedding
  kDeadlineMiss,  ///< instant: completed (or dropped) past its deadline
  kHedged,        ///< instant: a hedged duplicate attempt was enqueued
  kBreakerTrip,   ///< instant: pool circuit breaker opened (id = pool)
  kBreakerProbe,  ///< instant: half-open breaker admitted a probe
  kBreakerClose,  ///< instant: probe succeeded, breaker closed
};

inline constexpr std::size_t kNumSpanNames = 17;

[[nodiscard]] constexpr const char* span_name(SpanName name) noexcept {
  switch (name) {
    case SpanName::kRequest: return "request";
    case SpanName::kQueued: return "queued";
    case SpanName::kExecuting: return "executing";
    case SpanName::kBackoff: return "backoff";
    case SpanName::kAdmitted: return "admitted";
    case SpanName::kRejected: return "rejected";
    case SpanName::kForked: return "forked";
    case SpanName::kCompleted: return "completed";
    case SpanName::kCrashed: return "crashed";
    case SpanName::kRestarted: return "restarted";
    case SpanName::kTier: return "tier";
    case SpanName::kShed: return "shed";
    case SpanName::kDeadlineMiss: return "deadline_miss";
    case SpanName::kHedged: return "hedged";
    case SpanName::kBreakerTrip: return "breaker_trip";
    case SpanName::kBreakerProbe: return "breaker_probe";
    case SpanName::kBreakerClose: return "breaker_close";
  }
  return "unknown";
}

/// Sampled fleet gauges, exported as Chrome counter ("C") events so
/// Perfetto renders them as a time series alongside the request spans.
enum class GaugeId : u8 {
  kQueueDepth = 0,
  kInFlight,
  kBreakerOpenPools,  ///< pools currently tripped open (topology LB view)
};

[[nodiscard]] constexpr const char* gauge_name(GaugeId id) noexcept {
  switch (id) {
    case GaugeId::kQueueDepth: return "queue_depth";
    case GaugeId::kInFlight: return "in_flight";
    case GaugeId::kBreakerOpenPools: return "breaker_open_pools";
  }
  return "unknown";
}

/// Retired-instruction classes, mirroring the cycle model's cost buckets.
enum class InstrClass : u8 { kAlu = 0, kBranch, kMem, kPa, kSvc, kOther };

inline constexpr std::size_t kNumInstrClasses = 6;

[[nodiscard]] constexpr const char* instr_class_name(InstrClass cls) noexcept {
  switch (cls) {
    case InstrClass::kAlu: return "alu";
    case InstrClass::kBranch: return "branch";
    case InstrClass::kMem: return "mem";
    case InstrClass::kPa: return "pa";
    case InstrClass::kSvc: return "svc";
    case InstrClass::kOther: return "other";
  }
  return "unknown";
}

/// Control-flow effect of a retired instruction, as seen by the profiler's
/// shadow call stack.
enum class CtlFlow : u8 { kNone = 0, kCall, kReturn };

/// One recorded event. `ts` is the owning track's simulated-cycle
/// timestamp; the meanings of `a`/`b` depend on the kind (see above).
/// `dur` is non-zero only for span events (kSyscall).
struct Event {
  u64 ts = 0;
  u64 a = 0;
  u64 b = 0;
  u32 dur = 0;
  EventKind kind = EventKind::kInstrRetire;
};

}  // namespace acs::obs
