// SipHash-2-4 (Aumasson & Bernstein, 2012).
//
// SipHash is the default PRF behind the PAC computation in this
// reproduction. The paper's security analysis (Section 6 and Appendix A)
// models the PA MAC H_k as a random oracle / PRF; any keyed PRF therefore
// preserves every reproduced claim. We pick SipHash-2-4 because its
// reference test vectors are well known and asserted in tests/crypto,
// giving us an offline-verifiable primitive. A structural QARMA-64
// implementation (the cipher actually referenced by the PA spec) lives in
// qarma64.h for fidelity experiments.
#pragma once

#include <cstddef>
#include <span>

#include "common/types.h"
#include "crypto/keys.h"

namespace acs::crypto {

/// Core SipHash-2-4 over an arbitrary byte message.
[[nodiscard]] u64 siphash24(const Key128& key, std::span<const u8> message) noexcept;

/// SipHash-2-4 over two 64-bit words (value, tweak) — the shape used by the
/// pointer-authentication layer. Equivalent to hashing the 16-byte
/// little-endian encoding of (value, tweak).
[[nodiscard]] u64 siphash24_pair(const Key128& key, u64 value, u64 tweak) noexcept;

}  // namespace acs::crypto
