#include "crypto/qarma64.h"

#include <array>
#include <cassert>
#include <stdexcept>

#include "common/bitops.h"

namespace acs::crypto {
namespace {

// Cell convention: the state is 16 nibbles; cell 0 is the most significant
// nibble (the convention used in the QARMA specification).
[[nodiscard]] constexpr unsigned cell_shift(unsigned cell) noexcept {
  return (15U - cell) * 4U;
}

[[nodiscard]] constexpr u8 get_cell(u64 state, unsigned cell) noexcept {
  return static_cast<u8>((state >> cell_shift(cell)) & 0xF);
}

[[nodiscard]] constexpr u64 set_cell(u64 state, unsigned cell, u8 value) noexcept {
  const unsigned sh = cell_shift(cell);
  return (state & ~(u64{0xF} << sh)) | (static_cast<u64>(value & 0xF) << sh);
}

constexpr std::array<u8, 16> invert_perm(const std::array<u8, 16>& p) {
  std::array<u8, 16> inv{};
  for (u8 i = 0; i < 16; ++i) inv[p[i]] = i;
  return inv;
}

// The three QARMA S-boxes: sigma_0 (lightweight, involutory), sigma_1 (the
// recommended default), sigma_2 (maximal nonlinearity).
constexpr std::array<std::array<u8, 16>, 3> kSboxes = {{
    {0, 14, 2, 10, 9, 15, 8, 11, 6, 4, 3, 7, 13, 12, 1, 5},   // sigma_0
    {10, 13, 14, 6, 15, 7, 3, 5, 9, 8, 0, 12, 11, 1, 2, 4},   // sigma_1
    {11, 6, 8, 15, 12, 0, 9, 14, 3, 7, 4, 5, 13, 2, 1, 10},   // sigma_2
}};

constexpr std::array<std::array<u8, 16>, 3> kSboxesInv = {{
    invert_perm(kSboxes[0]),
    invert_perm(kSboxes[1]),
    invert_perm(kSboxes[2]),
}};

// tau: the cell shuffle applied before MixColumns in a full round.
constexpr std::array<u8, 16> kTau = {0, 11, 6, 13, 10, 1, 12, 7,
                                     5, 14, 3, 8,  15, 4, 9,  2};
constexpr std::array<u8, 16> kTauInv = invert_perm(kTau);

// h: the tweak-cell shuffle of the tweak schedule.
constexpr std::array<u8, 16> kTweakShuffle = {6, 5, 14, 15, 0, 1, 2, 3,
                                              7, 12, 13, 4, 8, 9, 10, 11};
constexpr std::array<u8, 16> kTweakShuffleInv = invert_perm(kTweakShuffle);

// Cells of the tweak that pass through the omega LFSR each round.
constexpr std::array<u8, 7> kLfsrCells = {0, 1, 3, 4, 8, 11, 13};

// pi-derived round constants (as used by the QARMA/PRINCE family) and the
// alpha reflection constant.
constexpr std::array<u64, 8> kRoundConstants = {
    0x0000000000000000ULL, 0x13198A2E03707344ULL, 0xA4093822299F31D0ULL,
    0x082EFA98EC4E6C89ULL, 0x452821E638D01377ULL, 0xBE5466CF34E90C6CULL,
    0x3F84D5B5B5470917ULL, 0x9216D5D98979FB1BULL,
};
constexpr u64 kAlpha = 0xC0AC29B7C97C50DDULL;

[[nodiscard]] constexpr u8 nibble_rotl(u8 x, unsigned n) noexcept {
  n %= 4U;
  return static_cast<u8>(((x << n) | (x >> (4U - n))) & 0xF);
}

// omega: the 4-bit maximal-period LFSR used by the tweak schedule:
// (b3, b2, b1, b0) -> (b0 ^ b1, b3, b2, b1).
[[nodiscard]] constexpr u8 lfsr_forward(u8 x) noexcept {
  const u8 b0 = x & 1U;
  const u8 b1 = (x >> 1) & 1U;
  return static_cast<u8>(((b0 ^ b1) << 3) | (x >> 1));
}

[[nodiscard]] constexpr u8 lfsr_backward(u8 x) noexcept {
  const u8 b3 = (x >> 3) & 1U;
  const u8 old_b1 = x & 1U;          // after forward shift, bit0 = old b1
  const u8 old_b0 = static_cast<u8>(b3 ^ old_b1);
  return static_cast<u8>(((x << 1) & 0xF) | old_b0);
}

[[nodiscard]] u64 apply_cell_perm(u64 state, const std::array<u8, 16>& perm) noexcept {
  u64 out = 0;
  for (unsigned i = 0; i < 16; ++i) {
    out = set_cell(out, i, get_cell(state, perm[i]));
  }
  return out;
}

// o(): the orthomorphism deriving w1 from w0 (rotate right by one bit and
// XOR in the bit shifted out at the other end).
[[nodiscard]] constexpr u64 derive_w1(u64 w0) noexcept {
  return ((w0 >> 1) | (w0 << 63)) ^ (w0 >> 63);
}

}  // namespace

Qarma64::Qarma64(const Key128& key, unsigned rounds, QarmaSbox sbox)
    : w0_(key.hi), w1_(derive_w1(key.hi)), k0_(key.lo), k1_(key.lo),
      rounds_(rounds), sbox_(sbox) {
  if (rounds_ == 0 || rounds_ >= kRoundConstants.size()) {
    throw std::invalid_argument{"Qarma64: rounds must be in [1, 7]"};
  }
}

u64 Qarma64::mix_columns(u64 state) noexcept {
  // M = circ(0, rho, rho^2, rho) acting on each 4-cell column of the 4x4
  // cell array (row-major cells; column c holds cells {c, c+4, c+8, c+12}).
  u64 out = 0;
  for (unsigned col = 0; col < 4; ++col) {
    std::array<u8, 4> in{};
    for (unsigned row = 0; row < 4; ++row) {
      in[row] = get_cell(state, 4 * row + col);
    }
    for (unsigned row = 0; row < 4; ++row) {
      const u8 v = static_cast<u8>(nibble_rotl(in[(row + 1) % 4], 1) ^
                                   nibble_rotl(in[(row + 2) % 4], 2) ^
                                   nibble_rotl(in[(row + 3) % 4], 1));
      out = set_cell(out, 4 * row + col, v);
    }
  }
  return out;
}

u64 Qarma64::shuffle_tau(u64 state) noexcept {
  return apply_cell_perm(state, kTau);
}

u64 Qarma64::shuffle_tau_inv(u64 state) noexcept {
  return apply_cell_perm(state, kTauInv);
}

u64 Qarma64::sbox_layer(u64 state, QarmaSbox sbox) noexcept {
  const auto& table = kSboxes[static_cast<std::size_t>(sbox)];
  u64 out = 0;
  for (unsigned i = 0; i < 16; ++i) {
    out = set_cell(out, i, table[get_cell(state, i)]);
  }
  return out;
}

u64 Qarma64::sbox_layer_inv(u64 state, QarmaSbox sbox) noexcept {
  const auto& table = kSboxesInv[static_cast<std::size_t>(sbox)];
  u64 out = 0;
  for (unsigned i = 0; i < 16; ++i) {
    out = set_cell(out, i, table[get_cell(state, i)]);
  }
  return out;
}

u64 Qarma64::tweak_forward(u64 tweak) noexcept {
  u64 t = apply_cell_perm(tweak, kTweakShuffle);
  for (u8 cell : kLfsrCells) t = set_cell(t, cell, lfsr_forward(get_cell(t, cell)));
  return t;
}

u64 Qarma64::tweak_backward(u64 tweak) noexcept {
  u64 t = tweak;
  for (u8 cell : kLfsrCells) t = set_cell(t, cell, lfsr_backward(get_cell(t, cell)));
  return apply_cell_perm(t, kTweakShuffleInv);
}

u64 Qarma64::encrypt(u64 plaintext, u64 tweak) const noexcept {
  u64 s = plaintext ^ w0_;
  u64 t = tweak;

  // Forward rounds. Round 0 is "short" (no diffusion layer).
  for (unsigned i = 0; i < rounds_; ++i) {
    s ^= k0_ ^ t ^ kRoundConstants[i];
    if (i != 0) {
      s = shuffle_tau(s);
      s = mix_columns(s);
    }
    s = sbox_layer(s, sbox_);
    t = tweak_forward(t);
  }

  // Central whitening round (forward) with w1.
  s ^= w1_ ^ t;
  s = shuffle_tau(s);
  s = mix_columns(s);
  s = sbox_layer(s, sbox_);

  // Pseudo-reflector keyed with k1.
  s = shuffle_tau(s);
  s = mix_columns(s);
  s ^= k1_;
  s = shuffle_tau_inv(s);

  // Central whitening round (backward) with w0.
  s = sbox_layer_inv(s, sbox_);
  s = mix_columns(s);
  s = shuffle_tau_inv(s);
  s ^= w0_ ^ t;

  // Backward rounds mirror the forward ones under the alpha-reflected key.
  for (unsigned i = rounds_; i-- > 0;) {
    t = tweak_backward(t);
    s = sbox_layer_inv(s, sbox_);
    if (i != 0) {
      s = mix_columns(s);
      s = shuffle_tau_inv(s);
    }
    s ^= k0_ ^ kAlpha ^ t ^ kRoundConstants[i];
  }

  return s ^ w1_;
}

u64 Qarma64::decrypt(u64 ciphertext, u64 tweak) const noexcept {
  // Explicit inverse of encrypt(): replay every step backwards. The tweak
  // schedule is reconstructed by advancing to the central value first.
  u64 s = ciphertext ^ w1_;

  // Reconstruct per-round tweak values.
  std::array<u64, 8> tweaks{};  // tweaks[i] = tweak entering forward round i
  u64 t = tweak;
  for (unsigned i = 0; i < rounds_; ++i) {
    tweaks[i] = t;
    t = tweak_forward(t);
  }
  const u64 t_central = t;

  // Invert backward rounds (they were executed last).
  for (unsigned i = 0; i < rounds_; ++i) {
    // Backward round i consumed tweak value tweaks[i] (it stepped the tweak
    // back from the central value in reverse order of i).
    s ^= k0_ ^ kAlpha ^ tweaks[i] ^ kRoundConstants[i];
    if (i != 0) {
      s = shuffle_tau(s);
      s = mix_columns(s);
    }
    s = sbox_layer(s, sbox_);
  }

  // Invert the central backward whitening round.
  s ^= w0_ ^ t_central;
  s = shuffle_tau(s);
  s = mix_columns(s);
  s = sbox_layer(s, sbox_);

  // Invert the pseudo-reflector.
  s = shuffle_tau(s);
  s ^= k1_;
  s = mix_columns(s);
  s = shuffle_tau_inv(s);

  // Invert the central forward whitening round.
  s = sbox_layer_inv(s, sbox_);
  s = mix_columns(s);
  s = shuffle_tau_inv(s);
  s ^= w1_ ^ t_central;

  // Invert forward rounds in reverse order.
  for (unsigned i = rounds_; i-- > 0;) {
    s = sbox_layer_inv(s, sbox_);
    if (i != 0) {
      s = mix_columns(s);
      s = shuffle_tau_inv(s);
    }
    s ^= k0_ ^ tweaks[i] ^ kRoundConstants[i];
  }

  return s ^ w0_;
}

}  // namespace acs::crypto
