#include "crypto/siphash.h"

#include "common/bitops.h"

namespace acs::crypto {
namespace {

struct SipState {
  u64 v0, v1, v2, v3;

  explicit SipState(const Key128& key) noexcept
      // Reference initialisation: key words are (k0 = lo, k1 = hi).
      : v0(key.lo ^ 0x736f6d6570736575ULL),
        v1(key.hi ^ 0x646f72616e646f6dULL),
        v2(key.lo ^ 0x6c7967656e657261ULL),
        v3(key.hi ^ 0x7465646279746573ULL) {}

  void round() noexcept {
    v0 += v1;
    v1 = rotl64(v1, 13);
    v1 ^= v0;
    v0 = rotl64(v0, 32);
    v2 += v3;
    v3 = rotl64(v3, 16);
    v3 ^= v2;
    v0 += v3;
    v3 = rotl64(v3, 21);
    v3 ^= v0;
    v2 += v1;
    v1 = rotl64(v1, 17);
    v1 ^= v2;
    v2 = rotl64(v2, 32);
  }

  void compress(u64 m) noexcept {
    v3 ^= m;
    round();
    round();
    v0 ^= m;
  }

  [[nodiscard]] u64 finalize() noexcept {
    v2 ^= 0xff;
    round();
    round();
    round();
    round();
    return v0 ^ v1 ^ v2 ^ v3;
  }
};

[[nodiscard]] u64 load_le64(std::span<const u8> bytes, std::size_t offset,
                            std::size_t count) noexcept {
  u64 word = 0;
  for (std::size_t i = 0; i < count; ++i) {
    word |= static_cast<u64>(bytes[offset + i]) << (8 * i);
  }
  return word;
}

}  // namespace

u64 siphash24(const Key128& key, std::span<const u8> message) noexcept {
  SipState state{key};
  const std::size_t len = message.size();
  const std::size_t full_words = len / 8;
  for (std::size_t w = 0; w < full_words; ++w) {
    state.compress(load_le64(message, w * 8, 8));
  }
  // Final block: remaining bytes plus the message length in the top byte.
  u64 last = load_le64(message, full_words * 8, len % 8);
  last |= static_cast<u64>(len & 0xff) << 56;
  state.compress(last);
  return state.finalize();
}

u64 siphash24_pair(const Key128& key, u64 value, u64 tweak) noexcept {
  SipState state{key};
  state.compress(value);
  state.compress(tweak);
  // Final block for a 16-byte message: all-zero payload, length 16 in the
  // top byte — identical to hashing the little-endian byte encoding.
  state.compress(static_cast<u64>(16) << 56);
  return state.finalize();
}

}  // namespace acs::crypto
