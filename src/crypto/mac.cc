#include "crypto/mac.h"

#include <stdexcept>
#include <string_view>

#include "crypto/siphash.h"

namespace acs::crypto {

u64 SipMac::mac(u64 value, u64 tweak) const {
  return siphash24_pair(key_, value, tweak);
}

std::unique_ptr<TweakableMac> SipMac::clone() const {
  return std::make_unique<SipMac>(key_);
}

u64 QarmaMac::mac(u64 value, u64 tweak) const {
  return cipher_.encrypt(value, tweak);
}

std::unique_ptr<TweakableMac> QarmaMac::clone() const {
  return std::make_unique<QarmaMac>(*this);
}

u64 RandomOracleMac::mac(u64 value, u64 tweak) const {
  if (!sampler_ready_) {
    sampler_.reseed(seed_);
    sampler_ready_ = true;
  }
  const auto [it, inserted] = table_.try_emplace({value, tweak}, 0);
  if (inserted) it->second = sampler_.next();
  return it->second;
}

std::unique_ptr<TweakableMac> RandomOracleMac::clone() const {
  auto copy = std::make_unique<RandomOracleMac>(seed_);
  copy->table_ = table_;
  copy->sampler_ = sampler_;
  copy->sampler_ready_ = sampler_ready_;
  return copy;
}

std::unique_ptr<TweakableMac> make_mac(const char* backend, const Key128& key) {
  const std::string_view name{backend};
  if (name == "siphash") return std::make_unique<SipMac>(key);
  if (name == "qarma") return std::make_unique<QarmaMac>(key);
  if (name == "ro") return std::make_unique<RandomOracleMac>(key.lo ^ key.hi);
  throw std::invalid_argument{"make_mac: unknown backend"};
}

}  // namespace acs::crypto
