#include "crypto/keys.h"

namespace acs::crypto {

Key128 random_key(Rng& rng) noexcept { return Key128{rng.next(), rng.next()}; }

KeySet random_key_set(Rng& rng) noexcept {
  KeySet set;
  for (auto& key : set.keys) key = random_key(rng);
  return set;
}

}  // namespace acs::crypto
