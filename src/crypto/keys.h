// PA key material.
//
// ARMv8.3-A PA exposes five 128-bit keys (instruction A/B, data A/B, and a
// generic key), held in EL1-managed system registers (APIAKey_EL1 etc.).
// Linux regenerates them per process on exec and they are not readable from
// EL0; the kernel model in src/kernel enforces the same lifecycle.
#pragma once

#include <array>

#include "common/rng.h"
#include "common/types.h"

namespace acs::crypto {

/// A single 128-bit PA key.
struct Key128 {
  u64 hi = 0;
  u64 lo = 0;

  friend bool operator==(const Key128&, const Key128&) = default;
};

/// Which architectural key register a PA instruction uses.
enum class KeyId {
  kIA,  ///< instruction key A (pacia/autia) — used by PACStack
  kIB,  ///< instruction key B
  kDA,  ///< data key A
  kDB,  ///< data key B
  kGA,  ///< generic key (pacga)
};

inline constexpr std::size_t kNumKeys = 5;

/// The full per-process key set, as managed by the kernel.
struct KeySet {
  std::array<Key128, kNumKeys> keys{};

  [[nodiscard]] const Key128& operator[](KeyId id) const noexcept {
    return keys[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] Key128& operator[](KeyId id) noexcept {
    return keys[static_cast<std::size_t>(id)];
  }

  friend bool operator==(const KeySet&, const KeySet&) = default;
};

/// Draw a fresh 128-bit key from `rng`.
[[nodiscard]] Key128 random_key(Rng& rng) noexcept;

/// Draw a fresh full key set (what the kernel does on exec).
[[nodiscard]] KeySet random_key_set(Rng& rng) noexcept;

}  // namespace acs::crypto
