// QARMA-64 — the tweakable block cipher family referenced by the ARMv8.3-A
// pointer-authentication specification (Avanzi, ToSC 2017).
//
// This is a structurally faithful implementation of the QARMA-64 design:
// 16 4-bit cells, r forward rounds, a key-dependent central pseudo-reflector
// and r backward rounds; the sigma_1 S-box, the tau cell shuffle, the
// involutory MixColumns matrix M = circ(0, rho, rho^2, rho), the tweak
// schedule (cell shuffle h plus the omega LFSR on cells {0,1,3,4,8,11,13}),
// pi-derived round constants and the alpha reflection constant.
//
// Published test vectors are not reachable in this offline environment, so
// correctness is asserted structurally in tests/crypto: exact
// encrypt/decrypt inversion for random keys/tweaks, involution of M,
// bijectivity of the component permutations, and avalanche/key/tweak
// separation. The PAC layer uses SipHash-2-4 by default (vector-verified);
// QarmaMac is provided for structural-fidelity experiments and performance
// comparison (bench_micro_pa).
#pragma once

#include "common/types.h"
#include "crypto/keys.h"

namespace acs::crypto {

/// The three 4-bit S-boxes proposed for QARMA (sigma_0 is lightweight,
/// sigma_1 the default, sigma_2 the high-security option).
enum class QarmaSbox : u8 { kSigma0, kSigma1, kSigma2 };

/// QARMA-64 with a configurable number of forward/backward rounds
/// (the PA reference design uses r = 7; r = 5 is the lightweight variant).
class Qarma64 {
 public:
  /// `key.hi` is the whitening key w0, `key.lo` the core key k0.
  explicit Qarma64(const Key128& key, unsigned rounds = 7,
                   QarmaSbox sbox = QarmaSbox::kSigma1);

  /// Encrypt one 64-bit block under a 64-bit tweak.
  [[nodiscard]] u64 encrypt(u64 plaintext, u64 tweak) const noexcept;

  /// Decrypt one 64-bit block under a 64-bit tweak (exact inverse).
  [[nodiscard]] u64 decrypt(u64 ciphertext, u64 tweak) const noexcept;

  [[nodiscard]] unsigned rounds() const noexcept { return rounds_; }

  [[nodiscard]] QarmaSbox sbox() const noexcept { return sbox_; }

  // Component functions exposed for the structural property tests.
  [[nodiscard]] static u64 mix_columns(u64 state) noexcept;
  [[nodiscard]] static u64 shuffle_tau(u64 state) noexcept;
  [[nodiscard]] static u64 shuffle_tau_inv(u64 state) noexcept;
  [[nodiscard]] static u64 sbox_layer(u64 state,
                                      QarmaSbox sbox = QarmaSbox::kSigma1) noexcept;
  [[nodiscard]] static u64 sbox_layer_inv(u64 state,
                                          QarmaSbox sbox = QarmaSbox::kSigma1) noexcept;
  [[nodiscard]] static u64 tweak_forward(u64 tweak) noexcept;
  [[nodiscard]] static u64 tweak_backward(u64 tweak) noexcept;

 private:
  u64 w0_;       ///< outer whitening key
  u64 w1_;       ///< derived whitening key o(w0)
  u64 k0_;       ///< core round key
  u64 k1_;       ///< reflector key (= k0 in the 1-round-key variant)
  unsigned rounds_;
  QarmaSbox sbox_;
};

}  // namespace acs::crypto
