// Tweakable-MAC abstraction used by the pointer-authentication layer.
//
// The paper writes the PA primitive as a keyed, tweakable MAC
// H_k(pointer, modifier) and analyses it as a random oracle. The PAC field
// is a truncation of this 64-bit tag (truncation lives in src/pa, which
// owns the virtual-address layout). Three instantiations are provided:
//
//  * SipMac         — SipHash-2-4; the default (test-vector verified).
//  * QarmaMac       — QARMA-64 encryption of the pointer under the modifier
//                     as tweak; the cipher named by the PA reference design.
//  * RandomOracleMac — a lazily-sampled true random function; used by the
//                     Appendix A security games where the proof literally
//                     models H_k as a random oracle.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/rng.h"
#include "common/types.h"
#include "crypto/keys.h"
#include "crypto/qarma64.h"

namespace acs::crypto {

/// Keyed tweakable MAC over (value, tweak) pairs producing a 64-bit tag.
class TweakableMac {
 public:
  virtual ~TweakableMac() = default;

  /// Full-width (64-bit) tag for (value, tweak).
  [[nodiscard]] virtual u64 mac(u64 value, u64 tweak) const = 0;

  /// Deep copy (used when forking processes, which inherit keys).
  [[nodiscard]] virtual std::unique_ptr<TweakableMac> clone() const = 0;
};

/// SipHash-2-4-backed MAC (default PA PRF in this reproduction).
class SipMac final : public TweakableMac {
 public:
  explicit SipMac(const Key128& key) noexcept : key_(key) {}

  [[nodiscard]] u64 mac(u64 value, u64 tweak) const override;
  [[nodiscard]] std::unique_ptr<TweakableMac> clone() const override;

 private:
  Key128 key_;
};

/// QARMA-64-backed MAC: tag = E_k(value; tweak), as in the PA reference
/// design where the PAC is a truncated QARMA ciphertext.
class QarmaMac final : public TweakableMac {
 public:
  explicit QarmaMac(const Key128& key, unsigned rounds = 7)
      : cipher_(key, rounds) {}

  [[nodiscard]] u64 mac(u64 value, u64 tweak) const override;
  [[nodiscard]] std::unique_ptr<TweakableMac> clone() const override;

 private:
  Qarma64 cipher_;
};

/// Lazily-sampled random function: every fresh (value, tweak) pair gets an
/// independent uniform 64-bit tag. Deterministic per seed; suitable for the
/// random-oracle security games of Appendix A.
class RandomOracleMac final : public TweakableMac {
 public:
  explicit RandomOracleMac(u64 seed) noexcept : seed_(seed) {}

  [[nodiscard]] u64 mac(u64 value, u64 tweak) const override;
  [[nodiscard]] std::unique_ptr<TweakableMac> clone() const override;

  /// Number of distinct points sampled so far (oracle-query bookkeeping for
  /// the games).
  [[nodiscard]] std::size_t queries() const noexcept { return table_.size(); }

 private:
  struct PairHash {
    [[nodiscard]] std::size_t operator()(const std::pair<u64, u64>& p) const noexcept {
      u64 s = p.first ^ (p.second * 0x9e3779b97f4a7c15ULL);
      return static_cast<std::size_t>(splitmix64(s));
    }
  };

  u64 seed_;
  mutable std::unordered_map<std::pair<u64, u64>, u64, PairHash> table_;
  mutable Rng sampler_{0};
  mutable bool sampler_ready_ = false;
};

/// Convenience factory selecting the MAC backend by name ("siphash",
/// "qarma", "ro"); throws std::invalid_argument for unknown names.
[[nodiscard]] std::unique_ptr<TweakableMac> make_mac(const char* backend,
                                                     const Key128& key);

}  // namespace acs::crypto
