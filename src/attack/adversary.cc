#include "attack/adversary.h"

#include <stdexcept>

namespace acs::attack {

Adversary::Adversary(kernel::Machine& machine, u64 pid)
    : machine_(&machine), process_(machine.find_process(pid)) {
  if (process_ == nullptr) {
    throw std::invalid_argument{"Adversary: no such pid"};
  }
}

std::optional<u64> Adversary::read(u64 addr) const noexcept {
  return process_->mem.adversary_read_u64(addr);
}

bool Adversary::write(u64 addr, u64 value) noexcept {
  return process_->mem.adversary_write_u64(addr, value);
}

std::vector<u64> Adversary::read_stack(const kernel::Task& task) const {
  std::vector<u64> words;
  const u64 sp = task.cpu().reg(sim::Reg::kSp);
  const u64 top = task.stack_base + task.stack_size;
  for (u64 addr = sp; addr + 8 <= top; addr += 8) {
    if (const auto value = read(addr)) words.push_back(*value);
  }
  return words;
}

std::vector<u64> Adversary::stack_slot_addresses(
    const kernel::Task& task) const {
  std::vector<u64> slots;
  const u64 sp = task.cpu().reg(sim::Reg::kSp);
  const u64 top = task.stack_base + task.stack_size;
  for (u64 addr = sp; addr + 8 <= top; addr += 8) slots.push_back(addr);
  return slots;
}

std::vector<u64> Adversary::read_shadow_stack(const kernel::Task& task) const {
  const u64 base = kernel::kShadowBase + task.tid() * kernel::kShadowStride;
  std::vector<u64> words;
  std::size_t last_nonzero = 0;
  for (u64 addr = base; addr + 8 <= base + kernel::kShadowSize; addr += 8) {
    const auto value = read(addr);
    if (!value) break;
    words.push_back(*value);
    if (*value != 0) last_nonzero = words.size();
  }
  words.resize(last_nonzero);
  return words;
}

std::vector<Adversary::Harvested> Adversary::harvest_signed_pointers(
    const kernel::Task& task) const {
  const auto& layout = process_->pauth().layout();
  const auto& program = process_->program();
  std::vector<Harvested> found;
  const u64 sp = task.cpu().reg(sim::Reg::kSp);
  const u64 top = task.stack_base + task.stack_size;
  for (u64 addr = sp; addr + 8 <= top; addr += 8) {
    const auto value = read(addr);
    if (!value) continue;
    const u64 stripped = layout.strip(*value);
    if (layout.pac_field(*value) != 0 && stripped >= program.base &&
        stripped < program.end()) {
      found.push_back({addr, *value});
    }
  }
  return found;
}

void Adversary::break_at(const std::string& symbol) {
  machine_->add_global_breakpoint(process_->program().symbol(symbol));
}

void Adversary::clear_breakpoints() { machine_->clear_global_breakpoints(); }

kernel::Stop Adversary::run_until_break(u64 max_instructions) {
  return machine_->run(max_instructions);
}

kernel::Stop Adversary::resume(u64 max_instructions) {
  for (auto& process : machine_->processes()) {
    for (auto& task : process->tasks) {
      if (task->cpu().state() == sim::RunState::kBreakpoint) {
        task->cpu().resume();
      }
    }
  }
  return machine_->run(max_instructions);
}

}  // namespace acs::attack
