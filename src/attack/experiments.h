// Crypto-level Monte-Carlo security experiments.
//
// Each function measures one probabilistic claim from Sections 4.2, 4.3 or
// 6.2 at a reduced token size b (set through the VA layout, exactly as real
// hardware would shrink the PAC) so success events are observable within a
// bench run. The bench binaries print the measured rates next to the
// paper's closed-form values from core/analysis.h.
//
// Every campaign runs on exec::parallel_trials: trial t draws from its own
// RNG seeded exec::trial_seed(seed, t), so the reported statistics are
// bitwise identical for every `threads` value (0 = all hardware threads,
// 1 = sequential).
#pragma once

#include "common/types.h"

namespace acs::attack {

struct MonteCarloResult {
  u64 trials = 0;
  u64 successes = 0;
  [[nodiscard]] double rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};

/// Section 6.2.1, on-graph violation: the adversary harvests `harvest`
/// authenticated return addresses along distinct call-graph paths through a
/// victim call site and substitutes a colliding (no masking: detectable;
/// masking: blind guess) predecessor. Paper: success 1 without masking,
/// 2^-b with.
[[nodiscard]] MonteCarloResult on_graph_attack(unsigned b, bool masking,
                                               u64 harvest, u64 trials,
                                               u64 seed, unsigned threads = 1);

/// REPRODUCTION FINDING (deep-harvest observation). Working through the
/// Listing 3 algebra, a substitution of aret_B for aret_A below a live
/// chain value verifies iff the *masked* tokens collide:
///     t_A ^ m_A == t_B ^ m_B
/// (t = H(ret_C, aret), m = H(0, aret)) — and the masked token is exactly
/// the chain-register value, which is itself stored on the stack one call
/// level deeper whenever the victim function's callee calls further down.
/// An adversary who harvests at that depth sees masked-token collisions
/// directly, restoring birthday-bound success against the masked scheme.
/// The paper's Theorem 1 bounds identification of *raw-tag* collisions,
/// which by the algebra above is not the exploitable condition. This
/// experiment measures the deep-harvest strategy; see EXPERIMENTS.md for
/// discussion.
[[nodiscard]] MonteCarloResult on_graph_attack_deep_harvest(
    unsigned b, u64 harvest, u64 trials, u64 seed, unsigned threads = 1);

/// Section 6.2.2, off-graph violation to a *valid call-site* return
/// address: the substituted aret is valid but its (ret_C, aret_B) pair was
/// never computed. Paper: 2^-b regardless of masking.
[[nodiscard]] MonteCarloResult off_graph_to_call_site(unsigned b, bool masking,
                                                      u64 trials, u64 seed,
                                                      unsigned threads = 1);

/// Section 6.2.2, off-graph violation to an *arbitrary* address: both the
/// loader verification and the final jump need fresh guesses. Paper: 2^-2b.
[[nodiscard]] MonteCarloResult off_graph_arbitrary(unsigned b, bool masking,
                                                   u64 trials, u64 seed,
                                                   unsigned threads = 1);

/// Section 4.2 / 6.2.1 birthday statistics: tokens harvested until the
/// first auth-token collision. Paper: mean sqrt(pi/2 * 2^b) (~321 at b=16).
struct CollisionStats {
  double mean_tokens = 0;
  double stddev_tokens = 0;
  u64 trials = 0;
};
[[nodiscard]] CollisionStats tokens_to_collision(unsigned b, u64 trials,
                                                 u64 seed,
                                                 unsigned threads = 1);

/// Empirical P[some pair of q tokens collides] for comparison against
/// core::collision_probability.
[[nodiscard]] MonteCarloResult collision_within(unsigned b, u64 q, u64 trials,
                                                u64 seed,
                                                unsigned threads = 1);

/// Section 4.3 guessing campaigns. Returns the mean number of guesses the
/// attack needed over `trials` runs.
struct GuessStats {
  double mean_guesses = 0;
  double stddev_guesses = 0;
  u64 trials = 0;
};

/// Single process, fresh key after every crash: plain geometric search,
/// mean 2^b.
[[nodiscard]] GuessStats bruteforce_fresh_key(unsigned b, u64 trials, u64 seed,
                                              unsigned threads = 1);

/// Pre-forked siblings sharing the key, no re-seeding: divide-and-conquer
/// over two 2^(b-1) stages; mean 2^b total but each stage's result is
/// reusable — the paper's point is the *arbitrary jump* costs 2^b instead
/// of 2^(2b).
[[nodiscard]] GuessStats bruteforce_shared_key(unsigned b, u64 trials, u64 seed,
                                               unsigned threads = 1);

/// Pre-forked siblings with the Section 4.3 re-seeding mitigation: the two
/// stages cannot be split across siblings; mean 2^(b+1).
[[nodiscard]] GuessStats bruteforce_reseeded(unsigned b, u64 trials, u64 seed,
                                             unsigned threads = 1);

}  // namespace acs::attack
