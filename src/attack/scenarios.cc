#include "attack/scenarios.h"

#include <algorithm>

#include "attack/adversary.h"
#include "compiler/codegen.h"
#include "core/chain.h"
#include "kernel/machine.h"
#include "workload/callgraph_gen.h"

namespace acs::attack {

namespace {

using compiler::IrBuilder;
using compiler::Scheme;

constexpr u64 kMarkA = 11;
constexpr u64 kMarkB = 22;
constexpr u64 kMarkEvil = 0xE71;

/// The Listing 6 victim, extended with a second path: func calls A then B
/// (A and B are non-leaf siblings called from the same frame, so under
/// pac-ret their signed return addresses share the SP modifier); func2
/// reaches B along a different call-graph path, giving a PACStack attacker
/// a *different* chain value to attempt substituting.
[[nodiscard]] compiler::ProgramIr make_reuse_victim() {
  IrBuilder builder;
  const auto helper = builder.begin_function("helper");
  builder.compute(5);
  const auto fn_a = builder.begin_function("A");
  builder.call(helper);
  builder.vuln_site(1);  // stack_disclose()
  const auto fn_b = builder.begin_function("B", /*local_bytes=*/32);
  builder.call(helper);
  builder.vuln_site(2);  // stack_overwrite(buff)
  const auto func = builder.begin_function("func");
  builder.call(fn_a);
  builder.write_int(kMarkA);
  builder.call(fn_b);
  builder.write_int(kMarkB);
  const auto func2 = builder.begin_function("func2");
  builder.call(fn_b);
  builder.write_int(kMarkB);
  const auto entry = builder.begin_function("entry");
  builder.call(func);
  builder.call(func2);
  return builder.build(entry);
}

struct ReturnSlot {
  u64 addr = 0;
  u64 value = 0;
};

/// Innermost stack word that looks like a stored return address: either a
/// signed code pointer (non-zero PAC field) or a plain code pointer.
[[nodiscard]] std::vector<ReturnSlot> find_return_slots(
    const Adversary& adv, const kernel::Task& task,
    const kernel::Process& process) {
  const auto& layout = process.pauth().layout();
  const auto& program = process.program();
  std::vector<ReturnSlot> slots;
  const u64 sp = task.cpu().reg(sim::Reg::kSp);
  const u64 top = task.stack_base + task.stack_size;
  for (u64 addr = sp; addr + 8 <= top; addr += 8) {
    const auto value = adv.read(addr);
    if (!value || *value == 0) continue;
    const u64 stripped = layout.strip(*value);
    if (stripped >= program.base && stripped < program.end()) {
      slots.push_back({addr, *value});
    }
  }
  return slots;
}

/// Prefer a signed slot (PAC field set) when present — PACStack's stored
/// aret, pac-ret's signed LR; fall back to the innermost plain pointer.
[[nodiscard]] const ReturnSlot* innermost_slot(
    const std::vector<ReturnSlot>& slots, const pa::VaLayout& layout,
    bool prefer_signed) {
  if (slots.empty()) return nullptr;
  if (prefer_signed) {
    for (const auto& slot : slots) {
      if (layout.pac_field(slot.value) != 0) return &slot;
    }
  }
  return &slots.front();
}

[[nodiscard]] ScenarioResult finish(kernel::Process& process) {
  ScenarioResult result;
  if (process.state == kernel::ProcessState::kKilled) {
    result.outcome = AttackOutcome::kCrashed;
    result.fault = process.kill_fault.kind;
    result.detail = process.kill_reason;
    return result;
  }
  const auto marks_a = std::count(process.output.begin(), process.output.end(),
                                  kMarkA);
  const bool evil = std::count(process.output.begin(), process.output.end(),
                               kMarkEvil) > 0;
  if (marks_a > 1 || evil) {
    result.outcome = AttackOutcome::kHijacked;
    result.detail = evil ? "attacker payload executed"
                         : "return diverted to a reused call site";
  } else {
    result.outcome = AttackOutcome::kBenign;
    result.detail = "program completed normally";
  }
  return result;
}

/// Run the machine to completion, transparently resuming breakpoints the
/// attack no longer cares about.
void run_ignoring_breakpoints(Adversary& adv) {
  for (int i = 0; i < 64; ++i) {
    const auto stop = adv.resume();
    if (stop.reason != kernel::StopReason::kBreakpoint) return;
  }
}

}  // namespace

std::string outcome_name(AttackOutcome outcome) {
  switch (outcome) {
    case AttackOutcome::kHijacked: return "HIJACKED";
    case AttackOutcome::kCrashed: return "detected (crash)";
    case AttackOutcome::kBenign: return "no effect";
  }
  return "?";
}

ScenarioResult run_reuse_attack(Scheme scheme, bool contiguous_overflow,
                                u64 seed) {
  const auto program =
      compiler::compile_ir(make_reuse_victim(), {.scheme = scheme});
  kernel::MachineOptions options;
  options.seed = seed;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();
  const auto& layout = process.pauth().layout();

  const bool prefer_signed = scheme == Scheme::kPacStack ||
                             scheme == Scheme::kPacStackNoMask ||
                             scheme == Scheme::kPacRet;

  adv.break_at("vuln_1");
  adv.break_at("vuln_2");
  const u64 vuln_2 = program.symbol("vuln_2");

  // Walk the vulnerable sites: harvest return-address-looking words at each
  // stop; at the first write site (inside B) where the harvest pool offers
  // a *different* value of matching kind, substitute it.
  std::vector<ReturnSlot> pool;
  bool substituted = false;
  auto stop = adv.run_until_break();
  for (int round = 0; round < 16; ++round) {
    if (stop.reason != kernel::StopReason::kBreakpoint) break;
    auto slots = find_return_slots(adv, task, process);
    const bool at_write_site = task.cpu().pc() == vuln_2;
    if (at_write_site && !substituted) {
      const ReturnSlot* victim = innermost_slot(slots, layout, prefer_signed);
      u64 substitute = 0;
      if (victim != nullptr) {
        auto candidates = pool;
        candidates.insert(candidates.end(), slots.begin(), slots.end());
        for (const auto& candidate : candidates) {
          if (candidate.value != victim->value &&
              (layout.pac_field(candidate.value) != 0) ==
                  (layout.pac_field(victim->value) != 0)) {
            substitute = candidate.value;
            break;
          }
        }
      }
      if (substitute != 0) {
        if (contiguous_overflow) {
          // Linear overflow from the buffer: every word from SP up to the
          // victim slot is clobbered (this is what tramples the canary).
          const u64 sp = task.cpu().reg(sim::Reg::kSp);
          for (u64 addr = sp; addr < victim->addr; addr += 8) {
            adv.write(addr, 0x4141414141414141ULL);
          }
        }
        adv.write(victim->addr, substitute);
        substituted = true;
      }
    }
    pool.insert(pool.end(), slots.begin(), slots.end());
    stop = adv.resume();
  }

  run_ignoring_breakpoints(adv);
  return finish(process);
}

ScenarioResult run_shadow_stack_attack(bool also_corrupt_shadow, u64 seed) {
  const auto program = compiler::compile_ir(make_reuse_victim(),
                                            {.scheme = Scheme::kShadowStack});
  kernel::MachineOptions options;
  options.seed = seed;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();
  const auto& layout = process.pauth().layout();

  adv.break_at("vuln_1");
  adv.break_at("vuln_2");

  u64 ret_a = 0;
  auto stop = adv.run_until_break();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* slot = innermost_slot(slots, layout, false)) {
      ret_a = slot->value;  // plain ret_A inside A's frame record
    }
  }

  stop = adv.resume();
  if (stop.reason == kernel::StopReason::kBreakpoint && ret_a != 0) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* victim = innermost_slot(slots, layout, false)) {
      adv.write(victim->addr, ret_a);  // main-stack copy
    }
    if (also_corrupt_shadow) {
      // The shadow stack lives at a known address (no ASLR for our
      // adversary): overwrite its top entry too.
      const auto shadow = adv.read_shadow_stack(task);
      if (!shadow.empty()) {
        const u64 top_addr = kernel::kShadowBase +
                             task.tid() * kernel::kShadowStride +
                             (shadow.size() - 1) * 8;
        adv.write(top_addr, ret_a);
      }
    }
  }

  run_ignoring_breakpoints(adv);
  return finish(process);
}

ScenarioResult run_signing_gadget_attack(bool fpac, u64 seed) {
  IrBuilder builder;
  const auto helper = builder.begin_function("helper");
  builder.compute(5);
  const auto fn_b = builder.begin_function("B");
  builder.call(helper);
  builder.write_int(kMarkB);
  const auto fn_t = builder.begin_function("T");
  builder.call(helper);
  builder.vuln_site(3);
  builder.tail_call(fn_b);  // Listing 8: T ends with `b B`
  const auto func = builder.begin_function("func");
  builder.call(fn_t);
  builder.write_int(kMarkA);
  const auto ir = builder.build(func);

  const auto program = compiler::compile_ir(ir, {.scheme = Scheme::kPacStack});
  kernel::MachineOptions options;
  options.seed = seed;
  options.fpac = fpac;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();
  const auto& layout = process.pauth().layout();

  adv.break_at("vuln_3");
  const auto stop = adv.run_until_break();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    // Inject an arbitrary (unsigned) pointer into T's stored-aret slot,
    // hoping the aut->pac sequence around the tail call will "launder" it
    // into a validly signed chain value.
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* victim = innermost_slot(slots, layout, true)) {
      adv.write(victim->addr, program.symbol("helper"));
    }
  }

  run_ignoring_breakpoints(adv);
  return finish(process);
}

ScenarioResult run_sigreturn_attack(bool defense, u64 seed) {
  return run_sigreturn_attack_against(
      defense ? SigreturnDefense::kAsigret : SigreturnDefense::kNone, seed);
}

ScenarioResult run_sigreturn_attack_against(SigreturnDefense defense,
                                            u64 seed) {
  IrBuilder builder;
  builder.begin_function("evil");  // the attacker's payload
  builder.write_int(kMarkEvil);
  const auto handler = builder.begin_function("handler");  // leaf: SP = frame
  builder.vuln_site(5);
  builder.write_int(0x51);
  const auto entry = builder.begin_function("entry");
  builder.sigaction(kernel::kSigUsr1, handler);
  builder.vuln_site(4);
  builder.compute(100);
  builder.write_int(99);
  const auto ir = builder.build(entry);

  const auto program = compiler::compile_ir(ir, {.scheme = Scheme::kPacStack});
  kernel::MachineOptions options;
  options.seed = seed;
  options.sigreturn_defense = defense == SigreturnDefense::kAsigret ||
                              defense == SigreturnDefense::kAsigretAllRegs;
  options.sigreturn_bind_all_regs =
      defense == SigreturnDefense::kAsigretAllRegs;
  options.sigreturn_canary = defense == SigreturnDefense::kSignalCanary;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();

  adv.break_at("vuln_4");
  adv.break_at("vuln_5");

  auto stop = adv.run_until_break();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    // The "kernel delivers a signal" part is legitimate; the attack is the
    // frame forgery below.
    process.pending_signals.push_back(kernel::kSigUsr1);
  }

  stop = adv.resume();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    // Inside the (leaf) handler: SP points at the signal frame. Rewrite the
    // saved PC so sigreturn "restores" execution into the payload.
    const u64 frame = task.cpu().reg(sim::Reg::kSp);
    adv.write(frame + kernel::SignalFrame::kPcOffset, program.symbol("evil"));
    // Give the payload a clean landing afterwards: restored LR = the
    // thread-exit stub, so the hijacked flow terminates quietly.
    const u64 lr_slot = frame + kernel::SignalFrame::kRegsOffset +
                        8 * static_cast<u64>(sim::kLr);
    adv.write(lr_slot, program.symbol("__thread_exit"));
  }

  run_ignoring_breakpoints(adv);
  return finish(process);
}

ScenarioResult run_partial_protection_attack(bool protect_library, u64 seed) {
  // entry -> G -> H gives the adversary a *consistent* (aret, predecessor)
  // pair: H's frame stores aret_G and G's frame stores aret_entry, and
  // verify(aret_G, aret_entry) holds by construction. Splicing aret_G into
  // the chain register spilled by the unprotected library function U makes
  // the protected caller F "return" to G's return site.
  IrBuilder builder;
  const auto helper = builder.begin_function("helper");
  builder.compute(5);
  const auto fn_h = builder.begin_function("H");
  builder.call(helper);
  builder.vuln_site(11);  // harvest point (depth 2)
  const auto fn_g = builder.begin_function("G");
  builder.call(fn_h);
  const auto fn_u = builder.begin_function("U");  // unprotected library fn
  builder.vuln_site(12);
  builder.compute(3);
  builder.mark_spills_cr();
  const auto fn_f = builder.begin_function("F");
  builder.call(fn_u);
  const auto entry = builder.begin_function("entry");
  builder.call(fn_g);
  builder.write_int(kMarkA);  // G's return site — the bend target
  builder.call(fn_f);
  builder.write_int(kMarkB);
  const auto ir = builder.build(entry);

  compiler::CompileOptions copts;
  copts.scheme = Scheme::kPacStack;
  if (!protect_library) copts.uninstrumented.push_back("U");
  const auto program = compiler::compile_ir(ir, copts);

  kernel::MachineOptions options;
  options.seed = seed;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();
  const auto& layout = process.pauth().layout();

  adv.break_at("vuln_11");
  adv.break_at("vuln_12");

  // Harvest the consistent pair inside H.
  u64 harvested_aret = 0;
  auto stop = adv.run_until_break();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* slot = innermost_slot(slots, layout, true)) {
      harvested_aret = slot->value;  // aret_G (verifies against aret_entry)
    }
  }

  // Splice it into the innermost signed slot inside U: the spilled CR when
  // U is unprotected, U's (or F's) stored chain value when protected.
  stop = adv.resume();
  if (stop.reason == kernel::StopReason::kBreakpoint && harvested_aret != 0) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* victim = innermost_slot(slots, layout, true)) {
      adv.write(victim->addr, harvested_aret);
    }
  }

  run_ignoring_breakpoints(adv);
  return finish(process);
}

ScenarioResult run_unwind_corruption_attack(Scheme scheme, u64 seed) {
  // entry(catch 1) -> mid -> thrower(throw 1). The adversary corrupts
  // mid's stored return link (frame-record LR / stored aret, by scheme) to
  // point at `evil`, which advertises a handler for tag 1. A trusting
  // unwinder lands there; evil's pad then "returns" through the stale LR
  // into mid's body, executing the normally-skipped code (the 0xE71
  // marker). ACS-validated unwinding refuses the forged link.
  IrBuilder builder;
  const auto thrower = builder.begin_function("thrower");
  builder.throw_exception(1, 5);
  builder.begin_function("evil");
  builder.catch_point(1);  // attacker-chosen landing site
  builder.compute(1);
  const auto mid = builder.begin_function("mid");
  builder.write_int(kMarkA);
  builder.vuln_site(41);
  builder.call(thrower);
  builder.write_int(kMarkEvil);  // skipped unless the unwind was hijacked
  const auto entry = builder.begin_function("entry");
  builder.catch_point(1);
  builder.write_int(kMarkB);
  builder.call(mid);
  const auto ir = builder.build(entry);

  const auto program = compiler::compile_ir(ir, {.scheme = scheme});
  kernel::MachineOptions options;
  options.seed = seed;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();
  const auto& layout = process.pauth().layout();

  const bool prefer_signed = scheme == Scheme::kPacStack ||
                             scheme == Scheme::kPacStackNoMask;

  adv.break_at("vuln_41");
  const auto stop = adv.run_until_break();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* victim = innermost_slot(slots, layout, prefer_signed)) {
      adv.write(victim->addr, program.symbol("evil"));
    }
  }
  // A hijacked unwind can leave the victim spinning in attacker-controlled
  // code: bound the post-attack run tightly.
  for (int i = 0; i < 4; ++i) {
    if (adv.resume(2'000'000).reason != kernel::StopReason::kBreakpoint) break;
  }
  return finish(process);
}

ConditionResult run_masked_token_condition_cpu(unsigned b, u64 trials,
                                               u64 seed) {
  // entry -> A -> C -> loader -> inner   (path A)
  // entry -> B -> C -> loader -> inner   (path B)
  // inner's frame stores the loader's chain value = the masked token.
  IrBuilder builder;
  const auto leaf = builder.begin_function("leaf");
  builder.compute(2);
  const auto inner = builder.begin_function("inner");
  builder.call(leaf);
  builder.vuln_site(34);  // harvest point: masked token + predecessor
  const auto loader = builder.begin_function("loader");
  builder.call(inner);
  builder.vuln_site(33);  // substitution point (loader's frame still live)
  const auto fn_c = builder.begin_function("C");
  builder.call(loader);
  builder.write_int(77);  // reached only if the loader's return verified
  const auto fn_a = builder.begin_function("A");
  builder.call(fn_c);
  const auto fn_b = builder.begin_function("B");
  builder.call(fn_c);
  const auto entry = builder.begin_function("entry");
  builder.call(fn_a);
  builder.call(fn_b);
  const auto ir = builder.build(entry);

  const auto program = compiler::compile_ir(ir, {.scheme = Scheme::kPacStack});
  const u64 vuln_33 = program.symbol("vuln_33");
  const u64 vuln_34 = program.symbol("vuln_34");

  ConditionResult result;
  Rng rng(seed);
  for (u64 t = 0; t < trials; ++t) {
    kernel::MachineOptions options;
    options.seed = rng.next();
    options.layout = pa::VaLayout{55U - b};
    kernel::Machine machine(program, options);
    Adversary adv(machine, machine.init_process().pid());
    auto& process = machine.init_process();
    auto& task = *process.tasks.front();
    const auto& layout = process.pauth().layout();

    adv.break_at("vuln_33");
    adv.break_at("vuln_34");

    // Path A harvest, then path B harvest + substitution.
    u64 token_a = 0, prev_a = 0, token_b = 0;
    unsigned loader_hits = 0;
    (void)layout;
    auto stop = adv.run_until_break();
    for (int round = 0; round < 8; ++round) {
      if (stop.reason != kernel::StopReason::kBreakpoint) break;
      const u64 pc = task.cpu().pc();
      const u64 sp = task.cpu().reg(sim::Reg::kSp);
      if (pc == vuln_34) {
        // Frame geometry of this fixed victim: inner's stored chain value
        // (the masked token) sits at [SP], the loader's stored predecessor
        // at [SP+32] (one 32-byte PACStack frame further out).
        const auto token = adv.read(sp);
        const auto prev = adv.read(sp + 32);
        if (token && prev) {
          if (token_a == 0) {
            token_a = *token;
            prev_a = *prev;
          } else if (token_b == 0) {
            token_b = *token;
          }
        }
      } else if (pc == vuln_33) {
        ++loader_hits;
        if (loader_hits == 2 && prev_a != 0) {
          // Path B live: the loader's stored predecessor is at [SP];
          // substitute path A's value.
          adv.write(sp, prev_a);
        }
      }
      stop = adv.resume();
    }
    run_ignoring_breakpoints(adv);

    const auto hits = std::count(process.output.begin(), process.output.end(),
                                 u64{77});
    const bool success = hits >= 2;
    const bool tokens_equal = token_a != 0 && token_a == token_b;
    result.successes += success ? 1 : 0;
    if (success != tokens_equal) ++result.condition_mismatches;
  }
  result.trials = trials;
  return result;
}

DeepHarvestE2E run_deep_harvest_e2e(unsigned b, unsigned paths, u64 machines,
                                    u64 seed) {
  // entry -> P_k -> C -> loader -> inner, for k in [0, paths). The frames
  // below vuln_61 (inside inner) are, innermost first:
  //   [SP+ 0] inner's stored link  = CR_loader  (the masked token)
  //   [SP+32] loader's stored link = aret_C (C's authenticated ret, path k)
  //   [SP+64] C's stored link      = aret_P (P_k's authenticated ret)
  // and at vuln_62 (inside loader, after inner returned):
  //   [SP+ 0] loader's stored link,  [SP+32] C's stored link.
  IrBuilder builder;
  const auto leaf = builder.begin_function("leaf");
  builder.compute(2);
  const auto inner = builder.begin_function("inner");
  builder.call(leaf);
  builder.vuln_site(61);
  const auto loader = builder.begin_function("loader");
  builder.call(inner);
  builder.vuln_site(62);
  const auto fn_c = builder.begin_function("C");
  builder.call(loader);
  std::vector<std::size_t> path_fns;
  for (unsigned k = 0; k < paths; ++k) {
    const auto pk = builder.begin_function("P" + std::to_string(k));
    builder.call(fn_c);
    builder.write_int(0x100 + k);  // duplicated iff the bend lands here
    path_fns.push_back(pk);
  }
  const auto entry = builder.begin_function("entry");
  for (const auto pk : path_fns) builder.call(pk);
  const auto ir = builder.build(entry);

  const auto program = compiler::compile_ir(ir, {.scheme = Scheme::kPacStack});
  const u64 vuln_61 = program.symbol("vuln_61");
  const u64 vuln_62 = program.symbol("vuln_62");

  DeepHarvestE2E result;
  Rng rng(seed);
  for (u64 m = 0; m < machines; ++m) {
    kernel::MachineOptions options;
    options.seed = rng.next();
    options.layout = pa::VaLayout{55U - b};
    kernel::Machine machine(program, options);
    Adversary adv(machine, machine.init_process().pid());
    auto& process = machine.init_process();
    auto& task = *process.tasks.front();

    adv.break_at("vuln_61");
    adv.break_at("vuln_62");

    struct PathObs {
      u64 token = 0;   // masked token (CR_loader) spilled one level deep
      u64 aret_c = 0;  // loader's stored link
      u64 aret_p = 0;  // C's stored link
    };
    std::vector<PathObs> observed;
    bool spliced = false;
    bool collided = false;

    auto stop = adv.run_until_break();
    for (unsigned round = 0; round < 2 * paths + 4; ++round) {
      if (stop.reason != kernel::StopReason::kBreakpoint) break;
      const u64 pc = task.cpu().pc();
      const u64 sp = task.cpu().reg(sim::Reg::kSp);
      if (pc == vuln_61) {
        PathObs obs;
        obs.token = adv.read(sp).value_or(0);
        obs.aret_c = adv.read(sp + 32).value_or(0);
        obs.aret_p = adv.read(sp + 64).value_or(0);
        observed.push_back(obs);
      } else if (pc == vuln_62 && !spliced && !observed.empty()) {
        // Current path = observed.back(); look for an earlier path whose
        // *visible* masked token matches.
        const auto& current = observed.back();
        for (std::size_t i = 0; i + 1 < observed.size(); ++i) {
          if (observed[i].token == current.token &&
              observed[i].aret_c != current.aret_c) {
            collided = true;
            // Splice path i's suffix under the live loader frame.
            adv.write(sp, observed[i].aret_c);
            adv.write(sp + 32, observed[i].aret_p);
            spliced = true;
            break;
          }
        }
      }
      stop = adv.resume();
    }
    for (int i = 0; i < static_cast<int>(paths) + 4; ++i) {
      if (adv.resume(5'000'000).reason != kernel::StopReason::kBreakpoint) {
        break;
      }
    }

    // Hijack detection: any per-path marker written twice.
    bool hijacked = false;
    for (unsigned k = 0; k < paths && !hijacked; ++k) {
      hijacked = std::count(process.output.begin(), process.output.end(),
                            u64{0x100 + k}) > 1;
    }
    ++result.machines;
    result.collisions += collided ? 1 : 0;
    result.hijacks += hijacked ? 1 : 0;
  }
  return result;
}

MonteCarloResult run_offgraph_arbitrary_cpu(unsigned b, u64 trials, u64 seed) {
  // entry -> func -> B(vuln). The adversary fabricates BOTH links below
  // B's live frame: B's stored link (AG-Load gate at B's return) and
  // func's stored link (AG-Jump gate at func's return, whose "return
  // address" is the attacker's payload).
  IrBuilder builder;
  const auto helper = builder.begin_function("helper");
  builder.compute(2);
  builder.begin_function("evil");
  builder.write_int(kMarkEvil);
  builder.compute(1);
  const auto fn_b = builder.begin_function("B", /*local_bytes=*/32);
  builder.call(helper);
  builder.vuln_site(71);
  const auto func = builder.begin_function("func");
  builder.call(fn_b);
  builder.write_int(kMarkB);
  const auto entry = builder.begin_function("entry");
  builder.call(func);
  const auto ir = builder.build(entry);

  const auto program = compiler::compile_ir(ir, {.scheme = Scheme::kPacStack});
  MonteCarloResult result;
  Rng rng(seed);
  for (u64 t = 0; t < trials; ++t) {
    kernel::MachineOptions options;
    options.seed = rng.next();
    options.layout = pa::VaLayout{55U - b};
    kernel::Machine machine(program, options);
    Adversary adv(machine, machine.init_process().pid());
    auto& process = machine.init_process();
    auto& task = *process.tasks.front();
    const auto& layout = process.pauth().layout();

    adv.break_at("vuln_71");
    const auto stop = adv.run_until_break();
    if (stop.reason == kernel::StopReason::kBreakpoint) {
      const u64 sp = task.cpu().reg(sim::Reg::kSp);
      const u64 pac_space = u64{1} << layout.pac_bits();
      // B's frame: 32B of locals then the 32B prologue area: B's stored
      // link is at [SP+32], func's at [SP+64].
      const u64 fake_b = layout.with_pac(program.symbol("evil"),
                                         1 + rng.next_below(pac_space - 1));
      const u64 fake_prev = rng.next();
      adv.write(sp + 32, fake_b);
      adv.write(sp + 64, fake_prev);
    }
    for (int i = 0; i < 4; ++i) {
      if (adv.resume(2'000'000).reason != kernel::StopReason::kBreakpoint) {
        break;
      }
    }
    // Full success: the payload ran (both gates passed).
    if (std::count(process.output.begin(), process.output.end(),
                   u64{kMarkEvil}) > 0) {
      ++result.successes;
    }
  }
  result.trials = trials;
  return result;
}

ReuseSurface measure_reuse_surface(compiler::Scheme scheme, u64 graphs,
                                   u64 seed) {
  ReuseSurface surface;
  Rng rng(seed);
  for (u64 g = 0; g < graphs; ++g) {
    workload::CallGraphParams params;
    params.num_functions = 10 + rng.next_below(8);
    params.call_probability = 0.6;
    const auto ir = workload::make_random_ir(rng, params);
    const auto program = compiler::compile_ir(ir, {.scheme = scheme});

    kernel::MachineOptions options;
    options.seed = rng.next();
    kernel::Machine machine(program, options);
    Adversary adv(machine, machine.init_process().pid());
    auto& task = *machine.init_process().tasks.front();

    // Break on every function entry and record each signing event.
    for (const auto& fn : ir.functions) adv.break_at(fn.name);

    // What matters is the *attack precondition*. Under pac-ret the spilled
    // signed LR is interchangeable whenever two different return addresses
    // share the SP modifier — an exact, directly exploitable event. Under
    // PACStack the analogous precondition is a collision of the b-bit
    // authentication tags of two different paths' aret values (an upper
    // bound on exploitability: the full substitution additionally needs a
    // matching context), expected at the 2^-b rate.
    const core::AcsChain chain{machine.init_process().pauth(),
                               scheme == compiler::Scheme::kPacStack};
    const auto& layout = machine.init_process().pauth().layout();
    std::vector<std::pair<u64, u64>> events;  // (precondition value, ret)
    auto stop = adv.run_until_break();
    for (int i = 0; i < 2000; ++i) {
      if (stop.reason != kernel::StopReason::kBreakpoint) break;
      const u64 pc = task.cpu().pc();
      const auto* info = program.unwind_for(pc);
      // Only functions that actually sign their return address count.
      if (info != nullptr && info->kind != sim::UnwindKind::kNoFrame) {
        const u64 ret = task.cpu().reg(sim::kLr);
        const u64 comparable =
            scheme == compiler::Scheme::kPacRet
                ? task.cpu().reg(sim::Reg::kSp)  // the SP modifier
                : layout.pac_field(
                      chain.compute_aret(ret, task.cpu().reg(sim::kCr)));
        events.emplace_back(comparable, ret);
      }
      stop = adv.resume();
    }

    u64 pairs = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
      for (std::size_t j = i + 1; j < events.size(); ++j) {
        if (events[i].first == events[j].first &&
            events[i].second != events[j].second) {
          ++pairs;
        }
      }
    }
    ++surface.graphs;
    surface.activations += events.size();
    surface.interchangeable_pairs += pairs;
    surface.graphs_with_pair += pairs > 0 ? 1 : 0;
  }
  return surface;
}

ScenarioResult run_replay_bending_attack(u64 seed) {
  // entry calls M twice; the adversary records M's stored chain value on
  // the first activation and "replays" it on the second. The chain is a
  // deterministic function of the path, so the replayed value is the one
  // already there — there is no outdated-but-valid aret_n to swap in
  // (Section 6.3: aret_n never leaves CR).
  IrBuilder builder;
  const auto helper = builder.begin_function("helper");
  builder.compute(5);
  const auto fn_m = builder.begin_function("M");
  builder.call(helper);
  builder.vuln_site(21);
  const auto entry = builder.begin_function("entry");
  builder.call(fn_m);
  builder.write_int(kMarkA);
  builder.call(fn_m);
  builder.write_int(kMarkB);
  const auto ir = builder.build(entry);

  const auto program = compiler::compile_ir(ir, {.scheme = Scheme::kPacStack});
  kernel::MachineOptions options;
  options.seed = seed;
  kernel::Machine machine(program, options);
  Adversary adv(machine, machine.init_process().pid());
  auto& process = machine.init_process();
  auto& task = *process.tasks.front();
  const auto& layout = process.pauth().layout();

  adv.break_at("vuln_21");
  u64 recorded = 0;
  auto stop = adv.run_until_break();
  if (stop.reason == kernel::StopReason::kBreakpoint) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* slot = innermost_slot(slots, layout, true)) {
      recorded = slot->value;
    }
  }
  stop = adv.resume();
  bool replay_identical = false;
  if (stop.reason == kernel::StopReason::kBreakpoint && recorded != 0) {
    const auto slots = find_return_slots(adv, task, process);
    if (const auto* victim = innermost_slot(slots, layout, true)) {
      replay_identical = victim->value == recorded;
      adv.write(victim->addr, recorded);  // the "replay"
    }
  }
  run_ignoring_breakpoints(adv);
  auto result = finish(process);
  if (result.outcome == AttackOutcome::kBenign && replay_identical) {
    result.detail = "replayed value was already in place (deterministic chain)";
  }
  return result;
}

MonteCarloResult run_offgraph_guess_cpu(unsigned b, u64 trials, u64 seed) {
  const auto program =
      compiler::compile_ir(make_reuse_victim(), {.scheme = Scheme::kPacStack});
  MonteCarloResult result;
  Rng rng(seed);
  for (u64 t = 0; t < trials; ++t) {
    kernel::MachineOptions options;
    options.seed = rng.next();  // fresh keys per victim process
    options.layout = pa::VaLayout{55U - b};
    kernel::Machine machine(program, options);
    Adversary adv(machine, machine.init_process().pid());
    auto& process = machine.init_process();
    auto& task = *process.tasks.front();
    const auto& layout = process.pauth().layout();

    adv.break_at("vuln_2");
    const auto stop = adv.run_until_break();
    if (stop.reason == kernel::StopReason::kBreakpoint) {
      // The innermost code-pointer-looking word is B's stored aret (it sits
      // below the frame record); target it regardless of whether its masked
      // tag happens to be zero.
      const auto slots = find_return_slots(adv, task, process);
      if (const auto* victim = innermost_slot(slots, layout, false)) {
        // Fabricate aret_B: attacker-chosen address, guessed auth token.
        const u64 fake = layout.with_pac(
            program.symbol("helper"),
            1 + rng.next_below(bit_mask(layout.pac_bits())));
        adv.write(victim->addr, fake);
      }
    }
    run_ignoring_breakpoints(adv);
    // AG-Load succeeded iff B's return verified against the fabricated
    // value — execution then reaches the write of kMarkB.
    if (std::count(process.output.begin(), process.output.end(), kMarkB) > 0) {
      ++result.successes;
    }
  }
  result.trials = trials;
  return result;
}

}  // namespace acs::attack
