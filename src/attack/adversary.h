// The Section 3 adversary, made executable.
//
// Capabilities: arbitrary read of mapped process memory and arbitrary write
// of non-executable pages (W^X, assumption A1), exercised while the victim
// is suspended at chosen program points (breakpoints on the vulnerable
// sites the victim IR marks). The adversary cannot touch registers, kernel
// state or PA keys. Helpers that locate stack slots use the task's SP —
// justified because the adversary has full memory disclosure and our
// address space has no ASLR, so frame addresses are computable anyway.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "kernel/machine.h"

namespace acs::attack {

class Adversary {
 public:
  Adversary(kernel::Machine& machine, u64 pid);

  [[nodiscard]] kernel::Process& process() noexcept { return *process_; }
  [[nodiscard]] kernel::Machine& machine() noexcept { return *machine_; }

  // --- memory primitives --------------------------------------------------
  [[nodiscard]] std::optional<u64> read(u64 addr) const noexcept;
  bool write(u64 addr, u64 value) noexcept;

  /// Read the active stack of `task` from its SP up to the stack top,
  /// innermost word first.
  [[nodiscard]] std::vector<u64> read_stack(const kernel::Task& task) const;

  /// Read the task's shadow-stack region (ShadowCallStack attack surface):
  /// all words from the region base up to and including the last non-zero.
  [[nodiscard]] std::vector<u64> read_shadow_stack(const kernel::Task& task) const;

  /// Addresses (not values) of the live stack words, innermost first —
  /// lets attacks overwrite the slot where a value was found.
  [[nodiscard]] std::vector<u64> stack_slot_addresses(
      const kernel::Task& task) const;

  /// Scan the live stack for words that look like signed code pointers:
  /// PAC field non-zero and stripped address inside the code segment.
  /// These are the "authenticated return addresses" the paper's attacker
  /// harvests. Returns (slot address, value) pairs, innermost first.
  struct Harvested {
    u64 slot = 0;
    u64 value = 0;
  };
  [[nodiscard]] std::vector<Harvested> harvest_signed_pointers(
      const kernel::Task& task) const;

  // --- execution control ----------------------------------------------------
  /// Arm a breakpoint at a program symbol (e.g. "vuln_1"). Applies to all
  /// current tasks and is re-armed on tasks created later (threads).
  void break_at(const std::string& symbol);
  void clear_breakpoints();

  /// Run the machine until a breakpoint fires (returns the stop), all tasks
  /// finish, or the budget is exhausted.
  kernel::Stop run_until_break(u64 max_instructions = 50'000'000);

  /// Resume from the current breakpoint and keep running.
  kernel::Stop resume(u64 max_instructions = 50'000'000);

 private:
  kernel::Machine* machine_;
  kernel::Process* process_;
};

}  // namespace acs::attack
