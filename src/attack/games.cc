#include "attack/games.h"

#include <algorithm>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "crypto/mac.h"
#include "exec/parallel.h"

namespace acs::attack {

namespace {

struct Query {
  u64 x = 0;
  u64 y = 0;
  u64 masked_token = 0;
};

/// The challenger's masked-token oracle: T(x, y) = H(x, y) ^ H(0, y),
/// truncated to b bits — exactly what an ACS stack frame exposes.
class MaskedOracle {
 public:
  MaskedOracle(const crypto::TweakableMac& mac, unsigned b)
      : mac_(&mac), mask_(bit_mask(b)) {}

  [[nodiscard]] u64 operator()(u64 x, u64 y) const {
    return (mac_->mac(x, y) ^ mac_->mac(0, y)) & mask_;
  }

  [[nodiscard]] u64 truth(u64 x, u64 y) const { return mac_->mac(x, y) & mask_; }

 private:
  const crypto::TweakableMac* mac_;
  u64 mask_;
};

[[nodiscard]] GameResult to_result(const exec::TrialAccumulator& acc) {
  return {.trials = acc.trials(), .wins = acc.successes()};
}

}  // namespace

GameResult pac_collision_game(unsigned b, u64 q, u64 trials, u64 seed,
                              unsigned threads) {
  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        const crypto::SipMac mac{crypto::random_key(rng)};
        const MaskedOracle oracle{mac, b};

        // Oracle phase: q chosen queries sharing the pointer x (collisions
        // must differ only in the modifier, Section 6.2.1).
        const u64 x = rng.next() | 1;
        std::vector<Query> queries;
        queries.reserve(q);
        for (u64 i = 0; i < q; ++i) {
          const u64 y = rng.next();
          queries.push_back({x, y, oracle(x, y)});
        }

        // Strategy: if two *masked* tokens collide, bet on that pair (this
        // is the information masking is supposed to destroy); otherwise
        // pick a random pair.
        std::size_t pick_a = 0;
        std::size_t pick_b = 1 % queries.size();
        bool found = false;
        for (std::size_t i = 0; i < queries.size() && !found; ++i) {
          for (std::size_t j = i + 1; j < queries.size(); ++j) {
            if (queries[i].masked_token == queries[j].masked_token &&
                queries[i].y != queries[j].y) {
              pick_a = i;
              pick_b = j;
              found = true;
              break;
            }
          }
        }
        if (!found) {
          pick_a = rng.next_below(queries.size());
          do {
            pick_b = rng.next_below(queries.size());
          } while (pick_b == pick_a);
        }

        // Challenge: do the *unmasked* tokens actually collide?
        const bool win =
            queries[pick_a].y != queries[pick_b].y &&
            oracle.truth(queries[pick_a].x, queries[pick_a].y) ==
                oracle.truth(queries[pick_b].x, queries[pick_b].y);
        acc.add_outcome(win);
      },
      threads);
  return to_result(merged);
}

GameResult pac_collision_game_unmasked(unsigned b, u64 q, u64 trials,
                                       u64 seed, unsigned threads) {
  const u64 mask = bit_mask(b);
  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        const crypto::SipMac mac{crypto::random_key(rng)};
        const u64 x = rng.next() | 1;
        std::vector<Query> queries;
        queries.reserve(q);
        for (u64 i = 0; i < q; ++i) {
          const u64 y = rng.next();
          queries.push_back({x, y, mac.mac(x, y) & mask});  // in the clear
        }
        bool win = false;
        for (std::size_t i = 0; i < queries.size() && !win; ++i) {
          for (std::size_t j = i + 1; j < queries.size(); ++j) {
            if (queries[i].masked_token == queries[j].masked_token &&
                queries[i].y != queries[j].y) {
              win = true;  // visible collision is a real collision
              break;
            }
          }
        }
        acc.add_outcome(win);
      },
      threads);
  return to_result(merged);
}

GameResult pac_distinguish_game(unsigned b, u64 q, u64 trials, u64 seed,
                                unsigned threads) {
  const u64 mask = bit_mask(b);
  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        const crypto::SipMac mac{crypto::random_key(rng)};
        const bool real = rng.next_bool();

        // The adversary sees q tokens that are either masked MACs or
        // uniform random values, and guesses which via a mean-based
        // statistic — any detectable bias would separate the distributions.
        double sum = 0;
        for (u64 i = 0; i < q; ++i) {
          u64 token;
          if (real) {
            const u64 y = rng.next();
            token = (mac.mac(rng.next(), y) ^ mac.mac(0, y)) & mask;
          } else {
            token = rng.next() & mask;
          }
          sum += static_cast<double>(token);
        }
        const double expected_mean = static_cast<double>(mask) / 2.0;
        const double mean = sum / static_cast<double>(q);
        // Guess "real" when the sample mean is below the midpoint — an
        // arbitrary decision rule; with no bias it wins half the time.
        const bool guess_real = mean < expected_mean;
        acc.add_outcome(guess_real == real);
      },
      threads);
  return to_result(merged);
}

GameResult mask_distinguish_game(unsigned b, u64 q, u64 trials, u64 seed,
                                 unsigned threads) {
  const u64 mask = bit_mask(b);
  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        const crypto::SipMac mac{crypto::random_key(rng)};
        // An independent random function standing in for S_0. Trial-local,
        // so its lazily-sampled table is never shared across threads.
        const crypto::RandomOracleMac decoy{rng.next()};
        const bool real = rng.next_bool();

        // Oracle phase: the adversary records (y, T(x,y)) pairs with x
        // fixed, then receives S(y) values for the same y's — either the
        // true masks or decoys — and applies a collision-consistency
        // statistic: if S is the real mask, T(x,y) ^ S(y) = H(x,y);
        // collisions in that derived set should then exactly match
        // collisions in H itself, which the adversary cannot evaluate. The
        // best generic check is comparing collision *counts* of T ^ S
        // against the uniform expectation.
        constexpr u64 kX = 0x1234;
        double stat = 0;
        std::vector<u64> derived;
        derived.reserve(q);
        for (u64 i = 0; i < q; ++i) {
          const u64 y = rng.next();
          const u64 token = (mac.mac(kX, y) ^ mac.mac(0, y)) & mask;
          const u64 s = (real ? mac.mac(0, y) : decoy.mac(0, y)) & mask;
          derived.push_back(token ^ s);
        }
        std::sort(derived.begin(), derived.end());
        for (std::size_t i = 1; i < derived.size(); ++i) {
          stat += derived[i] == derived[i - 1] ? 1.0 : 0.0;
        }
        // Expected collision count is identical in both worlds (uniform
        // b-bit values either way); guess "real" on below-expectation
        // collisions.
        const double expectation =
            static_cast<double>(q) * static_cast<double>(q) /
            (2.0 * static_cast<double>(mask + 1));
        const bool guess_real = stat < expectation;
        acc.add_outcome(guess_real == real);
      },
      threads);
  return to_result(merged);
}

}  // namespace acs::attack
