// The Appendix A security games, instantiated as Monte-Carlo harnesses.
//
// Theorem 1 reduces finding exploitable auth-token collisions under masking
// to distinguishing the masks from a random oracle (semantic security of a
// one-time pad). These harnesses run the games with concrete adversaries:
// the best generic strategies available without breaking the PRF. The bench
// prints their advantages, which should be statistically indistinguishable
// from zero (collision game: success ~ 2^-b; distinguishing game: ~ 1/2).
#pragma once

#include "common/types.h"

namespace acs::attack {

struct GameResult {
  u64 trials = 0;
  u64 wins = 0;
  [[nodiscard]] double win_rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(wins) / static_cast<double>(trials);
  }
  /// Advantage over the baseline win probability.
  [[nodiscard]] double advantage(double baseline) const noexcept {
    return win_rate() - baseline;
  }
};

/// G_PAC-Collision (Figure 6): after q masked-token oracle queries, the
/// adversary outputs (x, y, y') claiming H(x,y) = H(x,y'). Strategy: pick
/// the pair of queries whose *masked* tokens collide if one exists (the
/// natural-but-futile strategy Theorem 1 defeats), else a random pair.
/// Baseline (blind) success probability is 2^-b. All games run their
/// trials on exec::parallel_trials with per-trial seeds, so results are
/// independent of `threads` (0 = all hardware threads).
[[nodiscard]] GameResult pac_collision_game(unsigned b, u64 q, u64 trials,
                                            u64 seed, unsigned threads = 1);

/// Same game played WITHOUT masking (tokens leak directly): the adversary
/// wins whenever q is large enough for a birthday collision — this is the
/// contrast line showing what masking buys.
[[nodiscard]] GameResult pac_collision_game_unmasked(unsigned b, u64 q,
                                                     u64 trials, u64 seed,
                                                     unsigned threads = 1);

/// G_PAC-Distinguish (Figure 7): distinguish H_k from a random oracle given
/// q masked tokens. The adversary applies a chi-squared-style frequency
/// test over the masked tokens. Baseline win probability is 1/2.
[[nodiscard]] GameResult pac_distinguish_game(unsigned b, u64 q, u64 trials,
                                              u64 seed, unsigned threads = 1);

/// G_1/G_2 of the Theorem 1 game hops (Figures 8-9): given q masked tokens
/// T(x,y) = H(x,y) ^ H(0,y) and then a challenge oracle that is either the
/// true mask function S_1(y) = H(0,y) or an independent random oracle
/// S_0(y), guess which was used in the tokens. The adversary cross-checks:
/// for each recorded query it tests whether T(x,y) ^ S(y) looks like a
/// consistent PRF — but without the key every XOR is equally plausible, so
/// the best generic statistic stays at 1/2 (the one-time-pad hop G_3).
[[nodiscard]] GameResult mask_distinguish_game(unsigned b, u64 q, u64 trials,
                                               u64 seed, unsigned threads = 1);

}  // namespace acs::attack
