#include "attack/experiments.h"

#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/bitops.h"
#include "common/rng.h"
#include "core/chain.h"
#include "crypto/keys.h"
#include "exec/parallel.h"
#include "pa/pointer_auth.h"
#include "pa/va_layout.h"

namespace acs::attack {

namespace {

/// PA engine with a b-bit PAC (the paper's 16-bit default corresponds to
/// VA_SIZE = 39; smaller b models a larger VA_SIZE). The SipHash backend is
/// stateless, so one engine is safely shared (read-only) by every trial
/// thread of a campaign.
[[nodiscard]] pa::PointerAuth make_pauth(unsigned b, Rng& rng) {
  const pa::VaLayout layout{55U - b};
  return pa::PointerAuth{crypto::random_key_set(rng), layout};
}

/// A plausible canonical "code address" for the layout.
[[nodiscard]] u64 random_code_address(const pa::VaLayout& layout, Rng& rng) {
  return layout.address_bits(rng.next()) | 0x1000;
}

[[nodiscard]] MonteCarloResult to_result(const exec::TrialAccumulator& acc) {
  return {.trials = acc.trials(), .successes = acc.successes()};
}

/// Mean/stddev over per-trial counts (sample stddev, n-1 denominator),
/// reduced sequentially in trial order so the result is independent of the
/// thread count that produced `counts`.
[[nodiscard]] GuessStats finish_stats(const std::vector<u64>& counts) {
  GuessStats stats;
  stats.trials = counts.size();
  double sum = 0;
  for (u64 c : counts) sum += static_cast<double>(c);
  stats.mean_guesses = sum / static_cast<double>(counts.size());
  double ss = 0;
  for (u64 c : counts) {
    const double d = static_cast<double>(c) - stats.mean_guesses;
    ss += d * d;
  }
  stats.stddev_guesses =
      counts.size() > 1
          ? std::sqrt(ss / static_cast<double>(counts.size() - 1))
          : 0.0;
  return stats;
}

}  // namespace

MonteCarloResult on_graph_attack(unsigned b, bool masking, u64 harvest,
                                 u64 trials, u64 seed, unsigned threads) {
  Rng setup_rng(seed);
  const auto pauth = make_pauth(b, setup_rng);
  const core::AcsChain chain{pauth, masking};
  const auto& layout = pauth.layout();

  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        // `harvest` distinct execution paths arriving at the victim call
        // site with return address ret_c; the adversary sees the aret the
        // callee stores for each path (observed[j] = aret chaining ret_c
        // onto prev_j).
        const u64 ret_c = random_code_address(layout, rng);
        std::vector<u64> prevs;
        std::vector<u64> observed;
        prevs.reserve(harvest);
        observed.reserve(harvest);
        for (u64 j = 0; j < harvest; ++j) {
          const u64 prev = chain.compute_aret(random_code_address(layout, rng),
                                              rng.next());
          prevs.push_back(prev);
          observed.push_back(chain.compute_aret(ret_c, prev));
        }
        bool success = false;
        if (!masking) {
          // Unmasked auth tokens are directly comparable: find ANY colliding
          // pair (i, j), then steer execution down path i and substitute
          // prev_j for prev_i on the stack. By Eq. (1) the substitution
          // always verifies.
          std::unordered_map<u64, u64> tag_to_index;
          tag_to_index.reserve(harvest);
          for (u64 j = 0; j < harvest && !success; ++j) {
            const u64 tag = layout.pac_field(observed[j]);
            const auto [it, inserted] = tag_to_index.try_emplace(tag, j);
            if (!inserted && prevs[it->second] != prevs[j]) {
              success = chain.verify(observed[it->second], prevs[j]);
            }
          }
        } else {
          // Masked tokens are indistinguishable (Theorem 1): the best
          // available strategy is substituting a uniformly chosen harvested
          // predecessor under the live path (path 0).
          const u64 j = 1 + rng.next_below(harvest - 1);
          success = prevs[j] != prevs[0] && chain.verify(observed[0], prevs[j]);
        }
        acc.add_outcome(success);
      },
      threads);
  return to_result(merged);
}

MonteCarloResult on_graph_attack_deep_harvest(unsigned b, u64 harvest,
                                              u64 trials, u64 seed,
                                              unsigned threads) {
  Rng setup_rng(seed);
  const auto pauth = make_pauth(b, setup_rng);
  const core::AcsChain chain{pauth, /*masking=*/true};
  const auto& layout = pauth.layout();

  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        const u64 ret_c = random_code_address(layout, rng);
        std::vector<u64> prevs;
        std::vector<u64> deep_observed;
        prevs.reserve(harvest);
        deep_observed.reserve(harvest);
        for (u64 j = 0; j < harvest; ++j) {
          // prev_j: the victim's stored predecessor along path j (level n).
          const u64 prev = chain.compute_aret(random_code_address(layout, rng),
                                              rng.next());
          prevs.push_back(prev);
          // deep_observed_j: the chain-register value chaining ret_C over
          // prev_j — i.e. the *masked token* — which lands on the stack at
          // level n+1 when the callee calls deeper.
          deep_observed.push_back(chain.compute_aret(ret_c, prev));
        }
        // The masked tokens are directly comparable as stored words: any
        // full-value collision between distinct paths is exploitable.
        bool success = false;
        std::unordered_map<u64, u64> seen;
        seen.reserve(harvest);
        for (u64 j = 0; j < harvest && !success; ++j) {
          const auto [it, inserted] = seen.try_emplace(deep_observed[j], j);
          if (!inserted && prevs[it->second] != prevs[j]) {
            success = chain.verify(deep_observed[it->second], prevs[j]);
          }
        }
        acc.add_outcome(success);
      },
      threads);
  return to_result(merged);
}

MonteCarloResult off_graph_to_call_site(unsigned b, bool masking, u64 trials,
                                        u64 seed, unsigned threads) {
  Rng setup_rng(seed);
  const auto pauth = make_pauth(b, setup_rng);
  const core::AcsChain chain{pauth, masking};
  const auto& layout = pauth.layout();

  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        // Live state: CR authenticates ret_c over prev_a.
        const u64 ret_c = random_code_address(layout, rng);
        const u64 prev_a = chain.compute_aret(random_code_address(layout, rng),
                                              rng.next());
        const u64 cr = chain.compute_aret(ret_c, prev_a);
        // The adversary substitutes a *valid* aret_b harvested from an
        // unrelated chain; H(ret_c, aret_b) was never computed, so AG-Load
        // is a fresh 2^-b event. AG-Jump then succeeds for free (aret_b is
        // valid).
        const u64 aret_b = chain.compute_aret(random_code_address(layout, rng),
                                              rng.next());
        acc.add_outcome(aret_b != prev_a && chain.verify(cr, aret_b));
      },
      threads);
  return to_result(merged);
}

MonteCarloResult off_graph_arbitrary(unsigned b, bool masking, u64 trials,
                                     u64 seed, unsigned threads) {
  Rng setup_rng(seed);
  const auto pauth = make_pauth(b, setup_rng);
  const core::AcsChain chain{pauth, masking};
  const auto& layout = pauth.layout();

  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        const u64 ret_c = random_code_address(layout, rng);
        const u64 prev_a = chain.compute_aret(random_code_address(layout, rng),
                                              rng.next());
        const u64 cr = chain.compute_aret(ret_c, prev_a);
        // Fully fabricated aret_b: attacker-chosen target address and a
        // guessed auth token — plus a fabricated predecessor for the
        // follow-up return.
        const u64 target = random_code_address(layout, rng);
        const u64 aret_b =
            layout.with_pac(target, rng.next_below(u64{1} << layout.pac_bits()));
        const u64 prev_b = rng.next();
        // AG-Load: the loader's verification must accept aret_b.
        // AG-Jump: returning through aret_b must verify against prev_b.
        acc.add_outcome(chain.verify(cr, aret_b) &&
                        chain.verify(aret_b, prev_b));
      },
      threads);
  return to_result(merged);
}

CollisionStats tokens_to_collision(unsigned b, u64 trials, u64 seed,
                                   unsigned threads) {
  Rng setup_rng(seed);
  const auto pauth = make_pauth(b, setup_rng);
  const auto& layout = pauth.layout();

  const auto counts = exec::parallel_map_trials<u64>(
      trials, seed,
      [&](u64, u64 trial_seed) {
        Rng rng(trial_seed);
        std::unordered_set<u64> seen;
        const u64 ret_c = random_code_address(layout, rng);
        u64 count = 0;
        for (;;) {
          ++count;
          const u64 tag =
              pauth.expected_pac(crypto::KeyId::kIA, ret_c, rng.next());
          if (!seen.insert(tag).second) break;
        }
        return count;
      },
      threads);

  double sum = 0;
  double sum_sq = 0;
  for (u64 count : counts) {
    sum += static_cast<double>(count);
    sum_sq += static_cast<double>(count) * static_cast<double>(count);
  }
  CollisionStats stats;
  stats.trials = trials;
  stats.mean_tokens = sum / static_cast<double>(trials);
  const double var = sum_sq / static_cast<double>(trials) -
                     stats.mean_tokens * stats.mean_tokens;
  stats.stddev_tokens = var > 0 ? std::sqrt(var) : 0.0;
  return stats;
}

MonteCarloResult collision_within(unsigned b, u64 q, u64 trials, u64 seed,
                                  unsigned threads) {
  Rng setup_rng(seed);
  const auto pauth = make_pauth(b, setup_rng);
  const auto& layout = pauth.layout();

  const auto merged = exec::parallel_trials(
      trials, seed,
      [&](u64, u64 trial_seed, exec::TrialAccumulator& acc) {
        Rng rng(trial_seed);
        std::unordered_set<u64> seen;
        seen.reserve(q);
        const u64 ret_c = random_code_address(layout, rng);
        bool collided = false;
        for (u64 i = 0; i < q && !collided; ++i) {
          const u64 tag =
              pauth.expected_pac(crypto::KeyId::kIA, ret_c, rng.next());
          collided = !seen.insert(tag).second;
        }
        acc.add_outcome(collided);
      },
      threads);
  return to_result(merged);
}

GuessStats bruteforce_fresh_key(unsigned b, u64 trials, u64 seed,
                                unsigned threads) {
  const pa::VaLayout layout{55U - b};
  const u64 target_ret = layout.address_bits(0xbadd00d) | 0x1000;
  const auto counts = exec::parallel_map_trials<u64>(
      trials, seed,
      [&](u64, u64 trial_seed) {
        Rng rng(trial_seed);
        u64 guesses = 0;
        for (;;) {
          ++guesses;
          // Every failed guess crashes the process; the kernel generates a
          // new key on the restart's exec, so each guess faces a fresh H_k.
          const crypto::SipMac mac{crypto::random_key(rng)};
          const u64 truth = mac.mac(target_ret, /*modifier=*/0x1000) &
                            bit_mask(layout.pac_bits());
          const u64 guess = rng.next_below(u64{1} << layout.pac_bits());
          if (guess == truth) break;
        }
        return guesses;
      },
      threads);
  return finish_stats(counts);
}

GuessStats bruteforce_shared_key(unsigned b, u64 trials, u64 seed,
                                 unsigned threads) {
  const pa::VaLayout layout{55U - b};
  const auto counts = exec::parallel_map_trials<u64>(
      trials, seed,
      [&](u64, u64 trial_seed) {
        Rng rng(trial_seed);
        // Pre-forked siblings share one key: the adversary can enumerate
        // token values, burning one sibling per wrong guess, and *keep*
        // partial knowledge — the divide-and-conquer of Section 4.3.
        const crypto::SipMac mac{crypto::random_key(rng)};
        u64 guesses = 0;
        // Stage 1: find the auth token making (ret*, modifier) valid.
        const u64 stage1_truth =
            mac.mac(0x2000, 0xaaaa) & bit_mask(layout.pac_bits());
        for (u64 g = 0;; ++g) {
          ++guesses;
          if (g == stage1_truth) break;
        }
        // Stage 2: the accepted value becomes the next modifier; enumerate
        // the token for the actual target address.
        const u64 stage2_truth =
            mac.mac(0x3000, stage1_truth) & bit_mask(layout.pac_bits());
        for (u64 g = 0;; ++g) {
          ++guesses;
          if (g == stage2_truth) break;
        }
        return guesses;
      },
      threads);
  return finish_stats(counts);
}

GuessStats bruteforce_reseeded(unsigned b, u64 trials, u64 seed,
                               unsigned threads) {
  const pa::VaLayout layout{55U - b};
  const u64 space = u64{1} << layout.pac_bits();
  const auto counts = exec::parallel_map_trials<u64>(
      trials, seed,
      [&](u64, u64 trial_seed) {
        Rng rng(trial_seed);
        const crypto::SipMac mac{crypto::random_key(rng)};
        u64 guesses = 0;
        // Re-seeding makes each sibling's chain disjoint: enumeration with
        // elimination no longer works, so each stage is a fresh uniform
        // search (expected 2^b guesses) instead of a 2^(b-1) enumeration.
        for (unsigned stage = 0; stage < 2; ++stage) {
          for (;;) {
            ++guesses;
            const u64 init = rng.next();  // this sibling's re-seeded chain
            const u64 truth =
                mac.mac(0x2000 + stage, init) & bit_mask(layout.pac_bits());
            if (rng.next_below(space) == truth) break;
          }
        }
        return guesses;
      },
      threads);
  return finish_stats(counts);
}

}  // namespace acs::attack
