// End-to-end attack scenarios on the full stack (compiler + CPU + kernel).
//
// Each scenario builds a victim program in the IR, compiles it under a
// protection scheme, and drives the Section 3 adversary against it:
//
//  * run_reuse_attack       — the Listing 6 pointer-reuse attack: harvest a
//    (signed) return address in A, substitute it for B's while both were
//    signed under the same SP modifier. Hijacks baseline/canary/pac-ret;
//    crashes under PACStack (Section 6.1).
//  * run_shadow_stack_attack — same victim under ShadowCallStack; with the
//    shadow region's location known the adversary corrupts both copies
//    (the Section 1/8 motivation for ACS).
//  * run_signing_gadget_attack — the Section 6.3.1 aut->pac tail-call
//    gadget: PACStack detects the forged chain value at the latest on
//    return from the tail-callee; FPAC faults immediately.
//  * run_sigreturn_attack   — Section 6.3.2 / Appendix B: forge the signal
//    frame during handler execution; the authenticated-sigreturn defence
//    kills the process, without it the attacker gains arbitrary PC.
//  * run_offgraph_guess_cpu — CPU-level Monte-Carlo of the off-graph
//    AG-Load guess (success rate 2^-b), cross-validating the crypto-level
//    experiments at reduced b.
#pragma once

#include <string>

#include "attack/experiments.h"
#include "compiler/scheme.h"
#include "sim/fault.h"

namespace acs::attack {

enum class AttackOutcome : u8 {
  kHijacked,  ///< control flow diverted; attacker marker observed
  kCrashed,   ///< the attack was detected: process killed
  kBenign,    ///< program completed normally; the attack had no effect
};

[[nodiscard]] std::string outcome_name(AttackOutcome outcome);

struct ScenarioResult {
  AttackOutcome outcome = AttackOutcome::kBenign;
  sim::FaultKind fault = sim::FaultKind::kNone;
  std::string detail;
};

/// Listing 6 reuse attack. `contiguous_overflow` restricts the adversary to
/// a linear overflow from the local buffer (the attacker stack canaries can
/// actually see); otherwise it uses its arbitrary-write primitive.
[[nodiscard]] ScenarioResult run_reuse_attack(compiler::Scheme scheme,
                                              bool contiguous_overflow,
                                              u64 seed);

/// ShadowCallStack victim; `also_corrupt_shadow` = the adversary knows the
/// shadow stack's location (our address space has no ASLR, so it does).
[[nodiscard]] ScenarioResult run_shadow_stack_attack(bool also_corrupt_shadow,
                                                     u64 seed);

/// Section 6.3.1 signing-gadget attempt against a PACStack tail call.
[[nodiscard]] ScenarioResult run_signing_gadget_attack(bool fpac, u64 seed);

/// Which sigreturn hardening the kernel applies (Section 6.3.2 discusses
/// all three; Appendix B develops the last).
enum class SigreturnDefense : u8 {
  kNone,           ///< ASLR-only baseline (our adversary reads memory)
  kSignalCanary,   ///< Bosman & Bos signal canaries
  kAsigret,        ///< Appendix B authenticated sigreturn (PC + CR)
  kAsigretAllRegs, ///< Appendix B extension binding the whole register file
};

/// Section 6.3.2 sigreturn attack against the chosen kernel hardening.
[[nodiscard]] ScenarioResult run_sigreturn_attack_against(
    SigreturnDefense defense, u64 seed);

/// Back-compat helper: defense=false -> kNone, true -> kAsigret.
[[nodiscard]] ScenarioResult run_sigreturn_attack(bool defense, u64 seed);

/// CPU-level off-graph guessing: substitute a fabricated aret below a live
/// PACStack frame and count how often the return still verifies. Expected
/// success rate 2^-b.
[[nodiscard]] MonteCarloResult run_offgraph_guess_cpu(unsigned b, u64 trials,
                                                      u64 seed);

/// Section 9.2 interoperability hazard: an unprotected library function
/// spills the chain register to its (attacker-writable) stack frame. The
/// adversary harvests a consistent (aret, predecessor) pair from a deep
/// call elsewhere and splices it into the spilled CR slot + the caller's
/// stored slot, bending the protected caller's return to an on-graph but
/// wrong site. With `protect_library` the same function is instrumented
/// and the splice is detected.
[[nodiscard]] ScenarioResult run_partial_protection_attack(bool protect_library,
                                                           u64 seed);

/// ISA-level validation of the deep-harvest finding (see
/// experiments.h::on_graph_attack_deep_harvest): two call-graph paths reach
/// the same call site; the adversary harvests the masked token (the chain
/// value spilled one level deeper) and the stored predecessor on each
/// path, then substitutes path A's predecessor under path B's live frame.
/// The run counts how often the substituted return verifies and whether
/// that outcome coincided *exactly* with equality of the harvested masked
/// tokens.
struct ConditionResult {
  u64 trials = 0;
  u64 successes = 0;            ///< substituted return verified (AG-Load)
  u64 condition_mismatches = 0; ///< success XOR (masked tokens equal)
  [[nodiscard]] double rate() const noexcept {
    return trials == 0 ? 0.0
                       : static_cast<double>(successes) /
                             static_cast<double>(trials);
  }
};
[[nodiscard]] ConditionResult run_masked_token_condition_cpu(unsigned b,
                                                             u64 trials,
                                                             u64 seed);

/// Section 9.1: attack against exception unwinding. The adversary corrupts
/// a stored return link before a deep throw. With plain frame records the
/// kernel unwinder silently follows the forged link into an
/// attacker-chosen "handler" (unwind hijack); with PACStack unwind info
/// every popped link is ACS-verified and the throw becomes a kill.
[[nodiscard]] ScenarioResult run_unwind_corruption_attack(
    compiler::Scheme scheme, u64 seed);

/// End-to-end deep-harvest attack (the complete kill chain of the
/// reproduction finding): a victim with `paths` distinct call-graph routes
/// into the same call site. The adversary harvests (masked token, stored
/// predecessor, C's stored value) one level deep on every path; on the
/// first *visible* masked-token collision it splices the colliding path's
/// suffix into the live stack and lets execution bend back into the
/// already-completed path. Expect: hijacks == collisions (conditional
/// success probability 1, vs the paper's masked Table 1 entry of 2^-b).
struct DeepHarvestE2E {
  u64 machines = 0;
  u64 collisions = 0;  ///< runs where a masked-token collision was visible
  u64 hijacks = 0;     ///< runs where the splice bent control flow
};
[[nodiscard]] DeepHarvestE2E run_deep_harvest_e2e(unsigned b, unsigned paths,
                                                  u64 machines, u64 seed);

/// Full off-graph-to-arbitrary attack at ISA level: fabricate BOTH the
/// stored chain link under the live frame (AG-Load) and the next link
/// (AG-Jump), landing in an attacker payload with probability 2^-2b.
[[nodiscard]] MonteCarloResult run_offgraph_arbitrary_cpu(unsigned b,
                                                          u64 trials,
                                                          u64 seed);

/// Section 6.1 quantified: how often does the pac-ret reuse precondition —
/// two different return addresses signed under the same SP modifier —
/// actually arise? Random programs are executed and every signing event
/// (modifier, return address) recorded; interchangeable pairs are counted
/// for pac-ret (modifier = SP) and, for contrast, PACStack (modifier = the
/// path-unique chain value).
struct ReuseSurface {
  u64 graphs = 0;
  u64 graphs_with_pair = 0;   ///< programs containing >= 1 reusable pair
  u64 activations = 0;        ///< signing events observed
  u64 interchangeable_pairs = 0;
};
[[nodiscard]] ReuseSurface measure_reuse_surface(compiler::Scheme scheme,
                                                 u64 graphs, u64 seed);

/// Section 6.3 control-flow bending resistance: replay a previously
/// observed stored chain value at the same program point later. Because
/// the chain is deterministic per path, the replayed value is identical
/// and the attack degenerates to a no-op — PACStack never exposes an
/// "outdated but valid" aret_n the attacker could swap in.
[[nodiscard]] ScenarioResult run_replay_bending_attack(u64 seed);

}  // namespace acs::attack
