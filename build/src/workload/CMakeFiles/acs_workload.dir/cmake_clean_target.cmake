file(REMOVE_RECURSE
  "libacs_workload.a"
)
