file(REMOVE_RECURSE
  "CMakeFiles/acs_workload.dir/callgraph_gen.cc.o"
  "CMakeFiles/acs_workload.dir/callgraph_gen.cc.o.d"
  "CMakeFiles/acs_workload.dir/confirm_suite.cc.o"
  "CMakeFiles/acs_workload.dir/confirm_suite.cc.o.d"
  "CMakeFiles/acs_workload.dir/measure.cc.o"
  "CMakeFiles/acs_workload.dir/measure.cc.o.d"
  "CMakeFiles/acs_workload.dir/nginx_sim.cc.o"
  "CMakeFiles/acs_workload.dir/nginx_sim.cc.o.d"
  "CMakeFiles/acs_workload.dir/spec_suite.cc.o"
  "CMakeFiles/acs_workload.dir/spec_suite.cc.o.d"
  "libacs_workload.a"
  "libacs_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
