# Empty dependencies file for acs_workload.
# This may be replaced when dependencies are built.
