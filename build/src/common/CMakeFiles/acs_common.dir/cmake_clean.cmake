file(REMOVE_RECURSE
  "CMakeFiles/acs_common.dir/rng.cc.o"
  "CMakeFiles/acs_common.dir/rng.cc.o.d"
  "CMakeFiles/acs_common.dir/stats.cc.o"
  "CMakeFiles/acs_common.dir/stats.cc.o.d"
  "CMakeFiles/acs_common.dir/table.cc.o"
  "CMakeFiles/acs_common.dir/table.cc.o.d"
  "libacs_common.a"
  "libacs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
