
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cc" "src/core/CMakeFiles/acs_core.dir/analysis.cc.o" "gcc" "src/core/CMakeFiles/acs_core.dir/analysis.cc.o.d"
  "/root/repo/src/core/chain.cc" "src/core/CMakeFiles/acs_core.dir/chain.cc.o" "gcc" "src/core/CMakeFiles/acs_core.dir/chain.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pa/CMakeFiles/acs_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/acs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
