file(REMOVE_RECURSE
  "CMakeFiles/acs_core.dir/analysis.cc.o"
  "CMakeFiles/acs_core.dir/analysis.cc.o.d"
  "CMakeFiles/acs_core.dir/chain.cc.o"
  "CMakeFiles/acs_core.dir/chain.cc.o.d"
  "libacs_core.a"
  "libacs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
