file(REMOVE_RECURSE
  "CMakeFiles/acs_compiler.dir/codegen.cc.o"
  "CMakeFiles/acs_compiler.dir/codegen.cc.o.d"
  "CMakeFiles/acs_compiler.dir/interp.cc.o"
  "CMakeFiles/acs_compiler.dir/interp.cc.o.d"
  "CMakeFiles/acs_compiler.dir/ir.cc.o"
  "CMakeFiles/acs_compiler.dir/ir.cc.o.d"
  "CMakeFiles/acs_compiler.dir/schemes.cc.o"
  "CMakeFiles/acs_compiler.dir/schemes.cc.o.d"
  "libacs_compiler.a"
  "libacs_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
