file(REMOVE_RECURSE
  "libacs_compiler.a"
)
