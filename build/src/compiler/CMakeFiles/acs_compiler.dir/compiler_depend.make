# Empty compiler generated dependencies file for acs_compiler.
# This may be replaced when dependencies are built.
