file(REMOVE_RECURSE
  "libacs_pa.a"
)
