
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pa/pointer_auth.cc" "src/pa/CMakeFiles/acs_pa.dir/pointer_auth.cc.o" "gcc" "src/pa/CMakeFiles/acs_pa.dir/pointer_auth.cc.o.d"
  "/root/repo/src/pa/va_layout.cc" "src/pa/CMakeFiles/acs_pa.dir/va_layout.cc.o" "gcc" "src/pa/CMakeFiles/acs_pa.dir/va_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/acs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
