# Empty dependencies file for acs_pa.
# This may be replaced when dependencies are built.
