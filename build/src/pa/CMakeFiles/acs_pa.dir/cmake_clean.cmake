file(REMOVE_RECURSE
  "CMakeFiles/acs_pa.dir/pointer_auth.cc.o"
  "CMakeFiles/acs_pa.dir/pointer_auth.cc.o.d"
  "CMakeFiles/acs_pa.dir/va_layout.cc.o"
  "CMakeFiles/acs_pa.dir/va_layout.cc.o.d"
  "libacs_pa.a"
  "libacs_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
