file(REMOVE_RECURSE
  "libacs_attack.a"
)
