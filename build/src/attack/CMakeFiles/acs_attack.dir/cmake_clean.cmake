file(REMOVE_RECURSE
  "CMakeFiles/acs_attack.dir/adversary.cc.o"
  "CMakeFiles/acs_attack.dir/adversary.cc.o.d"
  "CMakeFiles/acs_attack.dir/experiments.cc.o"
  "CMakeFiles/acs_attack.dir/experiments.cc.o.d"
  "CMakeFiles/acs_attack.dir/games.cc.o"
  "CMakeFiles/acs_attack.dir/games.cc.o.d"
  "CMakeFiles/acs_attack.dir/scenarios.cc.o"
  "CMakeFiles/acs_attack.dir/scenarios.cc.o.d"
  "libacs_attack.a"
  "libacs_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
