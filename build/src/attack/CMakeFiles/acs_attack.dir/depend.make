# Empty dependencies file for acs_attack.
# This may be replaced when dependencies are built.
