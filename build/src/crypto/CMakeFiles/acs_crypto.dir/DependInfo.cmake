
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/keys.cc" "src/crypto/CMakeFiles/acs_crypto.dir/keys.cc.o" "gcc" "src/crypto/CMakeFiles/acs_crypto.dir/keys.cc.o.d"
  "/root/repo/src/crypto/mac.cc" "src/crypto/CMakeFiles/acs_crypto.dir/mac.cc.o" "gcc" "src/crypto/CMakeFiles/acs_crypto.dir/mac.cc.o.d"
  "/root/repo/src/crypto/qarma64.cc" "src/crypto/CMakeFiles/acs_crypto.dir/qarma64.cc.o" "gcc" "src/crypto/CMakeFiles/acs_crypto.dir/qarma64.cc.o.d"
  "/root/repo/src/crypto/siphash.cc" "src/crypto/CMakeFiles/acs_crypto.dir/siphash.cc.o" "gcc" "src/crypto/CMakeFiles/acs_crypto.dir/siphash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
