file(REMOVE_RECURSE
  "libacs_crypto.a"
)
