file(REMOVE_RECURSE
  "CMakeFiles/acs_crypto.dir/keys.cc.o"
  "CMakeFiles/acs_crypto.dir/keys.cc.o.d"
  "CMakeFiles/acs_crypto.dir/mac.cc.o"
  "CMakeFiles/acs_crypto.dir/mac.cc.o.d"
  "CMakeFiles/acs_crypto.dir/qarma64.cc.o"
  "CMakeFiles/acs_crypto.dir/qarma64.cc.o.d"
  "CMakeFiles/acs_crypto.dir/siphash.cc.o"
  "CMakeFiles/acs_crypto.dir/siphash.cc.o.d"
  "libacs_crypto.a"
  "libacs_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
