# Empty dependencies file for acs_crypto.
# This may be replaced when dependencies are built.
