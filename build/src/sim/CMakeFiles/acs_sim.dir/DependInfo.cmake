
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/assembler.cc" "src/sim/CMakeFiles/acs_sim.dir/assembler.cc.o" "gcc" "src/sim/CMakeFiles/acs_sim.dir/assembler.cc.o.d"
  "/root/repo/src/sim/cpu.cc" "src/sim/CMakeFiles/acs_sim.dir/cpu.cc.o" "gcc" "src/sim/CMakeFiles/acs_sim.dir/cpu.cc.o.d"
  "/root/repo/src/sim/disasm.cc" "src/sim/CMakeFiles/acs_sim.dir/disasm.cc.o" "gcc" "src/sim/CMakeFiles/acs_sim.dir/disasm.cc.o.d"
  "/root/repo/src/sim/isa.cc" "src/sim/CMakeFiles/acs_sim.dir/isa.cc.o" "gcc" "src/sim/CMakeFiles/acs_sim.dir/isa.cc.o.d"
  "/root/repo/src/sim/memory.cc" "src/sim/CMakeFiles/acs_sim.dir/memory.cc.o" "gcc" "src/sim/CMakeFiles/acs_sim.dir/memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pa/CMakeFiles/acs_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/acs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
