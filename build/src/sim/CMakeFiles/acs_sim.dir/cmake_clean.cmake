file(REMOVE_RECURSE
  "CMakeFiles/acs_sim.dir/assembler.cc.o"
  "CMakeFiles/acs_sim.dir/assembler.cc.o.d"
  "CMakeFiles/acs_sim.dir/cpu.cc.o"
  "CMakeFiles/acs_sim.dir/cpu.cc.o.d"
  "CMakeFiles/acs_sim.dir/disasm.cc.o"
  "CMakeFiles/acs_sim.dir/disasm.cc.o.d"
  "CMakeFiles/acs_sim.dir/isa.cc.o"
  "CMakeFiles/acs_sim.dir/isa.cc.o.d"
  "CMakeFiles/acs_sim.dir/memory.cc.o"
  "CMakeFiles/acs_sim.dir/memory.cc.o.d"
  "libacs_sim.a"
  "libacs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
