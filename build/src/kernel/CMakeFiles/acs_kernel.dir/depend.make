# Empty dependencies file for acs_kernel.
# This may be replaced when dependencies are built.
