file(REMOVE_RECURSE
  "libacs_kernel.a"
)
