file(REMOVE_RECURSE
  "CMakeFiles/acs_kernel.dir/backtrace.cc.o"
  "CMakeFiles/acs_kernel.dir/backtrace.cc.o.d"
  "CMakeFiles/acs_kernel.dir/machine.cc.o"
  "CMakeFiles/acs_kernel.dir/machine.cc.o.d"
  "CMakeFiles/acs_kernel.dir/task.cc.o"
  "CMakeFiles/acs_kernel.dir/task.cc.o.d"
  "libacs_kernel.a"
  "libacs_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
