
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/backtrace.cc" "src/kernel/CMakeFiles/acs_kernel.dir/backtrace.cc.o" "gcc" "src/kernel/CMakeFiles/acs_kernel.dir/backtrace.cc.o.d"
  "/root/repo/src/kernel/machine.cc" "src/kernel/CMakeFiles/acs_kernel.dir/machine.cc.o" "gcc" "src/kernel/CMakeFiles/acs_kernel.dir/machine.cc.o.d"
  "/root/repo/src/kernel/task.cc" "src/kernel/CMakeFiles/acs_kernel.dir/task.cc.o" "gcc" "src/kernel/CMakeFiles/acs_kernel.dir/task.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/acs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pa/CMakeFiles/acs_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/acs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
