file(REMOVE_RECURSE
  "CMakeFiles/attack_games_test.dir/attack/games_test.cc.o"
  "CMakeFiles/attack_games_test.dir/attack/games_test.cc.o.d"
  "attack_games_test"
  "attack_games_test.pdb"
  "attack_games_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_games_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
