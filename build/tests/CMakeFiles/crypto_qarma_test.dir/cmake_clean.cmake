file(REMOVE_RECURSE
  "CMakeFiles/crypto_qarma_test.dir/crypto/qarma_test.cc.o"
  "CMakeFiles/crypto_qarma_test.dir/crypto/qarma_test.cc.o.d"
  "crypto_qarma_test"
  "crypto_qarma_test.pdb"
  "crypto_qarma_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_qarma_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
