# Empty dependencies file for crypto_qarma_test.
# This may be replaced when dependencies are built.
