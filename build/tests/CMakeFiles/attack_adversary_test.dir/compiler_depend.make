# Empty compiler generated dependencies file for attack_adversary_test.
# This may be replaced when dependencies are built.
