file(REMOVE_RECURSE
  "CMakeFiles/attack_adversary_test.dir/attack/adversary_test.cc.o"
  "CMakeFiles/attack_adversary_test.dir/attack/adversary_test.cc.o.d"
  "attack_adversary_test"
  "attack_adversary_test.pdb"
  "attack_adversary_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_adversary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
