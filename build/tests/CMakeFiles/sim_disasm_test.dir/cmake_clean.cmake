file(REMOVE_RECURSE
  "CMakeFiles/sim_disasm_test.dir/sim/disasm_test.cc.o"
  "CMakeFiles/sim_disasm_test.dir/sim/disasm_test.cc.o.d"
  "sim_disasm_test"
  "sim_disasm_test.pdb"
  "sim_disasm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_disasm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
