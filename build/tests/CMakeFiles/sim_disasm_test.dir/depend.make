# Empty dependencies file for sim_disasm_test.
# This may be replaced when dependencies are built.
