# Empty compiler generated dependencies file for pa_pointer_auth_test.
# This may be replaced when dependencies are built.
