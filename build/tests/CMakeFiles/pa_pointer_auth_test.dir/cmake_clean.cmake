file(REMOVE_RECURSE
  "CMakeFiles/pa_pointer_auth_test.dir/pa/pointer_auth_test.cc.o"
  "CMakeFiles/pa_pointer_auth_test.dir/pa/pointer_auth_test.cc.o.d"
  "pa_pointer_auth_test"
  "pa_pointer_auth_test.pdb"
  "pa_pointer_auth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_pointer_auth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
