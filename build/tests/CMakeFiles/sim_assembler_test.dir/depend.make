# Empty dependencies file for sim_assembler_test.
# This may be replaced when dependencies are built.
