file(REMOVE_RECURSE
  "CMakeFiles/sim_assembler_test.dir/sim/assembler_test.cc.o"
  "CMakeFiles/sim_assembler_test.dir/sim/assembler_test.cc.o.d"
  "sim_assembler_test"
  "sim_assembler_test.pdb"
  "sim_assembler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_assembler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
