file(REMOVE_RECURSE
  "CMakeFiles/crypto_siphash_test.dir/crypto/siphash_test.cc.o"
  "CMakeFiles/crypto_siphash_test.dir/crypto/siphash_test.cc.o.d"
  "crypto_siphash_test"
  "crypto_siphash_test.pdb"
  "crypto_siphash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_siphash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
