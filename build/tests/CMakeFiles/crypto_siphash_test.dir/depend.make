# Empty dependencies file for crypto_siphash_test.
# This may be replaced when dependencies are built.
