# Empty dependencies file for compiler_interp_test.
# This may be replaced when dependencies are built.
