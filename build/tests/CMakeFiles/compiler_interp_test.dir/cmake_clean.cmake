file(REMOVE_RECURSE
  "CMakeFiles/compiler_interp_test.dir/compiler/interp_test.cc.o"
  "CMakeFiles/compiler_interp_test.dir/compiler/interp_test.cc.o.d"
  "compiler_interp_test"
  "compiler_interp_test.pdb"
  "compiler_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
