# Empty dependencies file for core_chain_fuzz_test.
# This may be replaced when dependencies are built.
