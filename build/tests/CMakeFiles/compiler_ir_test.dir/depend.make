# Empty dependencies file for compiler_ir_test.
# This may be replaced when dependencies are built.
