file(REMOVE_RECURSE
  "CMakeFiles/compiler_ir_test.dir/compiler/ir_test.cc.o"
  "CMakeFiles/compiler_ir_test.dir/compiler/ir_test.cc.o.d"
  "compiler_ir_test"
  "compiler_ir_test.pdb"
  "compiler_ir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_ir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
