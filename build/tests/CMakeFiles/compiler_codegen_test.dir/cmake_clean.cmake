file(REMOVE_RECURSE
  "CMakeFiles/compiler_codegen_test.dir/compiler/codegen_test.cc.o"
  "CMakeFiles/compiler_codegen_test.dir/compiler/codegen_test.cc.o.d"
  "compiler_codegen_test"
  "compiler_codegen_test.pdb"
  "compiler_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compiler_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
