file(REMOVE_RECURSE
  "CMakeFiles/pa_va_layout_test.dir/pa/va_layout_test.cc.o"
  "CMakeFiles/pa_va_layout_test.dir/pa/va_layout_test.cc.o.d"
  "pa_va_layout_test"
  "pa_va_layout_test.pdb"
  "pa_va_layout_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pa_va_layout_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
