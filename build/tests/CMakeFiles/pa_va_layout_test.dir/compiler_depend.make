# Empty compiler generated dependencies file for pa_va_layout_test.
# This may be replaced when dependencies are built.
