file(REMOVE_RECURSE
  "CMakeFiles/crypto_mac_test.dir/crypto/mac_test.cc.o"
  "CMakeFiles/crypto_mac_test.dir/crypto/mac_test.cc.o.d"
  "crypto_mac_test"
  "crypto_mac_test.pdb"
  "crypto_mac_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_mac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
