file(REMOVE_RECURSE
  "CMakeFiles/integration_execution_test.dir/integration/execution_test.cc.o"
  "CMakeFiles/integration_execution_test.dir/integration/execution_test.cc.o.d"
  "integration_execution_test"
  "integration_execution_test.pdb"
  "integration_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
