file(REMOVE_RECURSE
  "CMakeFiles/attack_experiments_test.dir/attack/experiments_test.cc.o"
  "CMakeFiles/attack_experiments_test.dir/attack/experiments_test.cc.o.d"
  "attack_experiments_test"
  "attack_experiments_test.pdb"
  "attack_experiments_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_experiments_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
