# Empty compiler generated dependencies file for attack_experiments_test.
# This may be replaced when dependencies are built.
