# Empty dependencies file for kernel_machine_test.
# This may be replaced when dependencies are built.
