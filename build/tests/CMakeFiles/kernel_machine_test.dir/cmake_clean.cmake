file(REMOVE_RECURSE
  "CMakeFiles/kernel_machine_test.dir/kernel/machine_test.cc.o"
  "CMakeFiles/kernel_machine_test.dir/kernel/machine_test.cc.o.d"
  "kernel_machine_test"
  "kernel_machine_test.pdb"
  "kernel_machine_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
