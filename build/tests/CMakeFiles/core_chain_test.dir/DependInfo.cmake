
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/chain_test.cc" "tests/CMakeFiles/core_chain_test.dir/core/chain_test.cc.o" "gcc" "tests/CMakeFiles/core_chain_test.dir/core/chain_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/acs_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/acs_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/acs_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/acs_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/acs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/acs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/pa/CMakeFiles/acs_pa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/acs_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/acs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
