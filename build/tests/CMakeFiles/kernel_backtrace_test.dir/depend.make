# Empty dependencies file for kernel_backtrace_test.
# This may be replaced when dependencies are built.
