file(REMOVE_RECURSE
  "CMakeFiles/kernel_backtrace_test.dir/kernel/backtrace_test.cc.o"
  "CMakeFiles/kernel_backtrace_test.dir/kernel/backtrace_test.cc.o.d"
  "kernel_backtrace_test"
  "kernel_backtrace_test.pdb"
  "kernel_backtrace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kernel_backtrace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
