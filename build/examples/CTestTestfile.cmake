# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_rop_attack "/root/repo/build/examples/rop_attack")
set_tests_properties(example_rop_attack PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_server_workers "/root/repo/build/examples/server_workers")
set_tests_properties(example_server_workers PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_longjmp_unwinding "/root/repo/build/examples/longjmp_unwinding")
set_tests_properties(example_longjmp_unwinding PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_backtrace_demo "/root/repo/build/examples/backtrace_demo")
set_tests_properties(example_backtrace_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_exceptions_demo "/root/repo/build/examples/exceptions_demo")
set_tests_properties(example_exceptions_demo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
