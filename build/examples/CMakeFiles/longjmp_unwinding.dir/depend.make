# Empty dependencies file for longjmp_unwinding.
# This may be replaced when dependencies are built.
