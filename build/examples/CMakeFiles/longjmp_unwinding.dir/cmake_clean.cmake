file(REMOVE_RECURSE
  "CMakeFiles/longjmp_unwinding.dir/longjmp_unwinding.cpp.o"
  "CMakeFiles/longjmp_unwinding.dir/longjmp_unwinding.cpp.o.d"
  "longjmp_unwinding"
  "longjmp_unwinding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/longjmp_unwinding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
