# Empty dependencies file for rop_attack.
# This may be replaced when dependencies are built.
