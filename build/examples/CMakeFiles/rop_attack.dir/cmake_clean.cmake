file(REMOVE_RECURSE
  "CMakeFiles/rop_attack.dir/rop_attack.cpp.o"
  "CMakeFiles/rop_attack.dir/rop_attack.cpp.o.d"
  "rop_attack"
  "rop_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rop_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
