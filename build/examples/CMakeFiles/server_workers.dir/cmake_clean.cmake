file(REMOVE_RECURSE
  "CMakeFiles/server_workers.dir/server_workers.cpp.o"
  "CMakeFiles/server_workers.dir/server_workers.cpp.o.d"
  "server_workers"
  "server_workers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/server_workers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
