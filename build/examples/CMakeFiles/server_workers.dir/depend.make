# Empty dependencies file for server_workers.
# This may be replaced when dependencies are built.
