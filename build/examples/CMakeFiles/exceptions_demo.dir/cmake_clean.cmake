file(REMOVE_RECURSE
  "CMakeFiles/exceptions_demo.dir/exceptions_demo.cpp.o"
  "CMakeFiles/exceptions_demo.dir/exceptions_demo.cpp.o.d"
  "exceptions_demo"
  "exceptions_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exceptions_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
