# Empty compiler generated dependencies file for exceptions_demo.
# This may be replaced when dependencies are built.
