file(REMOVE_RECURSE
  "CMakeFiles/backtrace_demo.dir/backtrace_demo.cpp.o"
  "CMakeFiles/backtrace_demo.dir/backtrace_demo.cpp.o.d"
  "backtrace_demo"
  "backtrace_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/backtrace_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
