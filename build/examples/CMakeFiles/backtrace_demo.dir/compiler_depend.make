# Empty compiler generated dependencies file for backtrace_demo.
# This may be replaced when dependencies are built.
