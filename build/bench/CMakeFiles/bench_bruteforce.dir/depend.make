# Empty dependencies file for bench_bruteforce.
# This may be replaced when dependencies are built.
