# Empty dependencies file for bench_table3_nginx.
# This may be replaced when dependencies are built.
