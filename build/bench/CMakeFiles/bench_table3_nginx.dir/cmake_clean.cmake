file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_nginx.dir/bench_table3_nginx.cc.o"
  "CMakeFiles/bench_table3_nginx.dir/bench_table3_nginx.cc.o.d"
  "bench_table3_nginx"
  "bench_table3_nginx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_nginx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
