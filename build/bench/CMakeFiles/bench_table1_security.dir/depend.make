# Empty dependencies file for bench_table1_security.
# This may be replaced when dependencies are built.
