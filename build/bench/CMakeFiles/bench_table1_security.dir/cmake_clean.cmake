file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_security.dir/bench_table1_security.cc.o"
  "CMakeFiles/bench_table1_security.dir/bench_table1_security.cc.o.d"
  "bench_table1_security"
  "bench_table1_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
