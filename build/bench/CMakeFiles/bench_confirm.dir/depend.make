# Empty dependencies file for bench_confirm.
# This may be replaced when dependencies are built.
