file(REMOVE_RECURSE
  "CMakeFiles/bench_confirm.dir/bench_confirm.cc.o"
  "CMakeFiles/bench_confirm.dir/bench_confirm.cc.o.d"
  "bench_confirm"
  "bench_confirm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_confirm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
