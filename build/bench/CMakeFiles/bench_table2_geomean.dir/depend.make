# Empty dependencies file for bench_table2_geomean.
# This may be replaced when dependencies are built.
