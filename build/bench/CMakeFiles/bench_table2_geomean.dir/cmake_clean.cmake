file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_geomean.dir/bench_table2_geomean.cc.o"
  "CMakeFiles/bench_table2_geomean.dir/bench_table2_geomean.cc.o.d"
  "bench_table2_geomean"
  "bench_table2_geomean.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_geomean.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
