# Empty dependencies file for bench_micro_pa.
# This may be replaced when dependencies are built.
