file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_pa.dir/bench_micro_pa.cc.o"
  "CMakeFiles/bench_micro_pa.dir/bench_micro_pa.cc.o.d"
  "bench_micro_pa"
  "bench_micro_pa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_pa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
