file(REMOVE_RECURSE
  "CMakeFiles/acs-run.dir/acs_run.cc.o"
  "CMakeFiles/acs-run.dir/acs_run.cc.o.d"
  "acs-run"
  "acs-run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/acs-run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
