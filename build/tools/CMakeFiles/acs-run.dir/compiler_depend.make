# Empty compiler generated dependencies file for acs-run.
# This may be replaced when dependencies are built.
