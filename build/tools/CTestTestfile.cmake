# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_acs_run_list "/root/repo/build/tools/acs-run" "--list")
set_tests_properties(tool_acs_run_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;4;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_acs_run_spec "/root/repo/build/tools/acs-run" "--workload" "505.mcf_r" "--scheme" "pacstack")
set_tests_properties(tool_acs_run_spec PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_acs_run_confirm "/root/repo/build/tools/acs-run" "--workload" "exceptions_deep" "--scheme" "pac-ret+leaf")
set_tests_properties(tool_acs_run_confirm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
