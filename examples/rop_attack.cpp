// ROP demo: the same victim binary compiled under every protection scheme,
// attacked by the Section 3 adversary (arbitrary read/write on data pages).
// Reproduces the paper's motivating comparison in one screenful:
// plain frames and canaries are hijacked, pac-ret falls to SP-modifier
// reuse (Section 6.1), ShadowCallStack falls once its location is known,
// PACStack turns the attack into a crash.
//
//   $ ./examples/rop_attack
#include <cstdio>

#include "attack/scenarios.h"
#include "common/table.h"
#include "compiler/scheme.h"

#include <iostream>

using namespace acs;
using namespace acs::attack;

int main() {
  std::printf("Victim: func() { A(); B(); } — the adversary harvests A's "
              "return address\nand substitutes it for B's (Listing 6 of the "
              "paper).\n\n");

  Table table({"protection scheme", "attack outcome", "why"});
  const auto describe = [](const ScenarioResult& result) {
    switch (result.outcome) {
      case AttackOutcome::kHijacked: return "return address accepted";
      case AttackOutcome::kCrashed: return "verification failed -> fault";
      case AttackOutcome::kBenign: return "attack had no effect";
    }
    return "?";
  };

  for (compiler::Scheme scheme :
       {compiler::Scheme::kNone, compiler::Scheme::kCanary,
        compiler::Scheme::kPacRet, compiler::Scheme::kPacStackNoMask,
        compiler::Scheme::kPacStack}) {
    const auto result = run_reuse_attack(scheme, false, 0xD0D0);
    table.add_row({compiler::scheme_name(scheme),
                   outcome_name(result.outcome), describe(result)});
  }

  // Shadow stacks: secure only while their location is secret.
  const auto hidden = run_shadow_stack_attack(false, 0xD0D0);
  table.add_row({"shadow-stack (location unknown)",
                 outcome_name(hidden.outcome), describe(hidden)});
  const auto exposed = run_shadow_stack_attack(true, 0xD0D0);
  table.add_row({"shadow-stack (location known)",
                 outcome_name(exposed.outcome), describe(exposed)});

  table.print(std::cout);

  std::printf("\nPACStack detail: the substituted value is a *different* "
              "chain value; the\nchained MAC H_k(ret, aret_prev) no longer "
              "matches, autia poisons the return\naddress and the fetch "
              "faults — exactly the paper's Section 6.1 argument.\n");
  return 0;
}
