// Server workload demo: the Table 3 NGINX-like experiment as a runnable
// example — multi-worker request serving with and without PACStack, with
// throughput and overhead printed per configuration.
//
//   $ ./examples/server_workers
#include <cstdio>
#include <iostream>

#include "common/table.h"
#include "workload/nginx_sim.h"

using namespace acs;

int main() {
  std::printf("Simulated TLS-terminating server: each worker parses a "
              "request, runs a\nhandshake-like MAC-heavy phase and responds "
              "(0-byte bodies, CPU-bound).\n\n");

  Table table({"workers", "scheme", "req/s", "sigma", "TPS loss %"});
  for (unsigned workers : {1U, 4U, 8U}) {
    workload::NginxConfig config;
    config.workers = workers;
    config.requests_per_worker = 150;
    config.repeats = 4;
    config.seed = 7 + workers;

    const auto baseline =
        workload::run_nginx_experiment(compiler::Scheme::kNone, config);
    for (const auto scheme :
         {compiler::Scheme::kNone, compiler::Scheme::kPacStackNoMask,
          compiler::Scheme::kPacStack}) {
      const auto result = workload::run_nginx_experiment(scheme, config);
      const double loss = (1.0 - result.requests_per_second /
                                     baseline.requests_per_second) *
                          100.0;
      table.add_row({std::to_string(workers),
                     compiler::scheme_name(scheme),
                     Table::fmt(result.requests_per_second, 0),
                     Table::fmt(result.stddev, 0),
                     scheme == compiler::Scheme::kNone ? "-"
                                                       : Table::fmt(loss, 1)});
    }
  }
  table.print(std::cout);
  std::printf("\nPaper (Table 3): 4-7%% TPS loss without masking, 6-13%% "
              "with; ~2x TPS when doubling workers.\n");
  return 0;
}
