// Irregular stack unwinding (Section 4.4 / 5.3): setjmp/longjmp under
// PACStack. Shows (1) a deep longjmp working through the authenticated
// wrappers of Listings 4-5, and (2) a tampered jmp_buf being rejected —
// the adversary cannot redirect a longjmp to an address of their choosing.
//
//   $ ./examples/longjmp_unwinding
#include <cstdio>

#include "attack/adversary.h"
#include "compiler/codegen.h"
#include "kernel/machine.h"

using namespace acs;

namespace {

compiler::ProgramIr make_victim() {
  compiler::IrBuilder builder;
  const auto deepest = builder.begin_function("deepest");
  builder.write_int(3);
  builder.longjmp_to(/*slot=*/0, /*value=*/42);
  const auto mid = builder.begin_function("mid");
  builder.write_int(2);
  builder.call(deepest);
  builder.write_int(0xBAD);  // skipped by the longjmp
  const auto entry = builder.begin_function("entry");
  builder.setjmp_point(0);   // logs the longjmp value when re-entered
  builder.write_int(1);
  builder.vuln_site(1);
  builder.call(mid);
  builder.write_int(0xBAD);  // skipped
  return builder.build(entry);
}

}  // namespace

int main() {
  const auto ir = make_victim();
  const auto program =
      compiler::compile_ir(ir, {.scheme = compiler::Scheme::kPacStack});

  // Benign run: setjmp -> descend two frames -> longjmp back; output is
  // 1, 2, 3 then the longjmp value 42.
  {
    kernel::Machine machine(program);
    machine.run();
    auto& process = machine.init_process();
    std::printf("benign longjmp: state=%s outputs=[",
                process.state == kernel::ProcessState::kExited ? "exited"
                                                               : "killed");
    for (u64 v : process.output) std::printf(" %llu", (unsigned long long)v);
    std::printf(" ]  (expect 1 2 3 42)\n");
  }

  // Attacked run: the adversary rewrites the jmp_buf's stored
  // authenticated return address before the longjmp fires. Listing 5's
  // verification rejects it: autia poisons the target and the jump faults.
  {
    kernel::Machine machine(program);
    attack::Adversary adv(machine, machine.init_process().pid());
    adv.break_at("vuln_1");
    auto stop = adv.run_until_break();
    if (stop.reason == kernel::StopReason::kBreakpoint) {
      const u64 buf = compiler::jmp_buf_addr(0);
      const auto aret_b = adv.read(buf);
      if (aret_b) {
        // Redirect the buffered return address to another code location
        // while keeping its (now wrong) authentication bits.
        const u64 hijacked =
            machine.init_process().pauth().layout().with_pac(
                program.symbol("mid"),
                machine.init_process().pauth().layout().pac_field(*aret_b));
        adv.write(buf, hijacked);
        std::printf("adversary: jmp_buf aret rewritten 0x%llx -> 0x%llx\n",
                    (unsigned long long)*aret_b,
                    (unsigned long long)hijacked);
      }
      adv.resume();
    }
    auto& process = machine.init_process();
    std::printf("tampered longjmp: state=%s (%s)\n",
                process.state == kernel::ProcessState::kKilled ? "KILLED"
                                                               : "exited",
                process.kill_reason.c_str());
  }
  return 0;
}
