// ACS-validating unwinding (the paper's Section 9.1 direction): walk a
// paused task's call stack by *verifying* each chained MAC link instead of
// trusting frame pointers. A corrupted frame stops the walk exactly where
// the integrity breaks — the unwinder doubles as a detector.
//
//   $ ./examples/backtrace_demo
#include <cstdio>

#include "attack/adversary.h"
#include "compiler/codegen.h"
#include "kernel/backtrace.h"
#include "kernel/machine.h"

using namespace acs;

namespace {

compiler::ProgramIr make_victim() {
  compiler::IrBuilder builder;
  const auto leaf = builder.begin_function("leaf");
  builder.compute(3);
  const auto parse = builder.begin_function("parse_token");
  builder.call(leaf);
  builder.vuln_site(1);
  const auto parse_line = builder.begin_function("parse_line");
  builder.call(parse);
  const auto parse_file = builder.begin_function("parse_file");
  builder.call(parse_line);
  const auto entry = builder.begin_function("run");
  builder.call(parse_file);
  return builder.build(entry);
}

void print_backtrace(const kernel::Backtrace& bt,
                     const sim::Program& program) {
  // Resolve each verified return address to the function containing it.
  const auto owner = [&program](u64 addr) -> std::string {
    std::string best = "?";
    u64 best_addr = 0;
    for (const auto& [name, sym_addr] : program.symbols) {
      if (sym_addr <= addr && sym_addr >= best_addr &&
          program.is_function_entry(sym_addr)) {
        best = name;
        best_addr = sym_addr;
      }
    }
    return best;
  };
  for (std::size_t i = 0; i < bt.frames.size(); ++i) {
    std::printf("  #%zu  0x%llx  (in %s)  [chain link verified]\n", i,
                (unsigned long long)bt.frames[i].return_address,
                owner(bt.frames[i].return_address).c_str());
  }
  std::printf("  chain %s\n",
              bt.complete ? "VERIFIED to the seed" : "BROKEN (corruption!)");
}

}  // namespace

int main() {
  const auto program =
      compiler::compile_ir(make_victim(), {.scheme = compiler::Scheme::kPacStack});
  kernel::Machine machine(program);
  attack::Adversary adv(machine, 1);
  adv.break_at("vuln_1");
  (void)adv.run_until_break();

  auto& process = machine.init_process();
  auto& task = *process.tasks.front();

  std::printf("Paused inside parse_token (run -> parse_file -> parse_line -> "
              "parse_token).\n\nACS-validated backtrace:\n");
  const auto clean = kernel::acs_backtrace(process, task);
  print_backtrace(clean, program);

  // Now corrupt one stored chain link and unwind again.
  if (clean.frames.size() > 1 && clean.frames[1].slot != 0) {
    const u64 slot = clean.frames[1].slot;
    adv.write(slot, *adv.read(slot) ^ 0x10);
    std::printf("\nadversary: flipped a bit in the stored link at 0x%llx\n\n",
                (unsigned long long)slot);
    const auto tampered = kernel::acs_backtrace(process, task);
    std::printf("backtrace after corruption:\n");
    print_backtrace(tampered, program);
  }
  return 0;
}
