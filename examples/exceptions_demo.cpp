// Exception-style unwinding under PACStack (Section 9.1): a deep throw is
// unwound frame-by-frame by the kernel, validating the authenticated call
// stack at every step. A corrupted frame turns the unwind into a clean
// kill; a plain frame-record unwinder would have followed the forged link.
//
//   $ ./examples/exceptions_demo
#include <cstdio>

#include "attack/adversary.h"
#include "compiler/codegen.h"
#include "kernel/machine.h"

using namespace acs;

namespace {

compiler::ProgramIr make_program() {
  compiler::IrBuilder builder;
  const auto parse_digit = builder.begin_function("parse_digit");
  builder.write_int(3);
  builder.throw_exception(/*tag=*/1, /*value=*/0xBAD1);  // parse error!
  const auto parse_number = builder.begin_function("parse_number");
  builder.write_int(2);
  builder.vuln_site(1);
  builder.call(parse_digit);
  builder.write_int(0x99);  // skipped: the throw unwinds past it
  const auto parse = builder.begin_function("parse");
  builder.catch_point(1);   // try { ... } catch (ParseError e)
  builder.write_int(1);
  builder.call(parse_number);
  builder.write_int(0x99);  // skipped on the catch path
  return builder.build(parse);
}

void report(kernel::Machine& machine) {
  const auto& process = machine.init_process();
  std::printf("  state: %s%s%s\n",
              process.state == kernel::ProcessState::kExited ? "exited"
                                                             : "KILLED",
              process.kill_reason.empty() ? "" : " — ",
              process.kill_reason.c_str());
  std::printf("  output:");
  for (u64 v : process.output) std::printf(" 0x%llx", (unsigned long long)v);
  std::printf("\n");
}

}  // namespace

int main() {
  const auto program =
      compiler::compile_ir(make_program(), {.scheme = compiler::Scheme::kPacStack});

  std::printf("parse() { try { parse_number() -> parse_digit() throws } "
              "catch { log } }\n\nbenign throw (unwinds two frames, "
              "validating each chain link):\n");
  {
    kernel::Machine machine(program);
    machine.run();
    report(machine);
    std::printf("  (0xbad1 is the caught exception value)\n");
  }

  std::printf("\nsame throw after the adversary corrupts parse_number's "
              "stored chain link:\n");
  {
    kernel::Machine machine(program);
    attack::Adversary adv(machine, 1);
    adv.break_at("vuln_1");
    if (adv.run_until_break().reason == kernel::StopReason::kBreakpoint) {
      auto& task = *machine.init_process().tasks.front();
      const auto harvested = adv.harvest_signed_pointers(task);
      if (!harvested.empty()) {
        adv.write(harvested.front().slot, harvested.front().value ^ 0x2);
      }
      adv.resume();
    }
    report(machine);
    std::printf("  (the ACS-validating unwinder refused the forged frame "
                "instead of following it)\n");
  }
  return 0;
}
