// Quickstart: build a tiny program in the IR, compile it with PACStack,
// run it on the simulated machine, and watch the authenticated call stack
// do its job — first on a benign run, then against a return-address
// overwrite.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "attack/adversary.h"
#include "compiler/codegen.h"
#include "kernel/machine.h"
#include "sim/disasm.h"

using namespace acs;

int main() {
  // 1. Write a program: entry() calls greet(), which calls shout() twice.
  compiler::IrBuilder builder;
  const auto shout = builder.begin_function("shout");
  builder.write_int(0x11);  // "hello"
  const auto greet = builder.begin_function("greet");
  builder.call(shout);
  builder.vuln_site(1);  // a memory-corruption bug lives here
  builder.call(shout);
  builder.write_int(0x22);  // "goodbye"
  const auto entry = builder.begin_function("entry");
  builder.call(greet);
  builder.write_int(0x33);  // "done"
  const auto ir = builder.build(entry);

  // 2. Compile it with the PACStack scheme — the LLVM-pass equivalent.
  const auto program =
      compiler::compile_ir(ir, {.scheme = compiler::Scheme::kPacStack});
  std::printf("=== generated code (PACStack instrumentation) ===\n%s\n",
              sim::disassemble(program).c_str());

  // 3. Benign run: everything verifies, the program exits cleanly.
  {
    kernel::Machine machine(program);
    machine.run();
    auto& process = machine.init_process();
    std::printf("benign run: state=%s outputs=[",
                process.state == kernel::ProcessState::kExited ? "exited"
                                                               : "killed");
    for (u64 v : process.output) std::printf(" 0x%llx",
                                             (unsigned long long)v);
    std::printf(" ]\n");
  }

  // 4. Attacked run: at the vulnerable site, the adversary overwrites the
  //    stored authenticated return address on the stack. The chained MAC
  //    verification fails and the process crashes instead of being
  //    hijacked.
  {
    kernel::Machine machine(program);
    attack::Adversary adv(machine, machine.init_process().pid());
    adv.break_at("vuln_1");
    auto stop = adv.run_until_break();
    if (stop.reason == kernel::StopReason::kBreakpoint) {
      auto& task = *machine.init_process().tasks.front();
      const auto harvested = adv.harvest_signed_pointers(task);
      if (!harvested.empty()) {
        std::printf("adversary: overwriting stored aret at 0x%llx\n",
                    (unsigned long long)harvested.front().slot);
        adv.write(harvested.front().slot, harvested.front().value ^ 0x1);
      }
      adv.resume();
    }
    auto& process = machine.init_process();
    std::printf("attacked run: state=%s (%s)\n",
                process.state == kernel::ProcessState::kKilled ? "KILLED"
                                                               : "exited",
                process.kill_reason.c_str());
  }
  return 0;
}
